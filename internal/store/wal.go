package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fsx"
)

// Write-ahead log. Mutations are framed as CRC-guarded, length-prefixed
// records and appended to segment files under <dir>/wal/. A segment is
// named wal-<firstSeq>.log after the first sequence number it may
// contain, which makes truncation a pure file-name computation: once a
// snapshot holds everything through watermark W, every segment whose
// successor starts at or before W+1 is garbage.
//
// Group commit: appends go to a buffered writer and are fsynced either
// every SyncEvery records or by a background ticker every SyncInterval,
// whichever comes first — the Kafka/Redis-AOF batching policy. With
// SyncEvery=1 every record is durable before Append returns; larger
// values trade a bounded tail of recent mutations for fsync amortization
// under heavy ingest.
//
// Torn tails: a crash mid-append leaves a partial or CRC-broken final
// record. Opening the WAL scans the last segment, truncates it at the
// last whole record, and resumes appending there; corruption anywhere
// except the tail of the final segment is reported as *CorruptError and
// refuses to open (that is real data loss, not a torn tail).
//
// Failed fsyncs POISON the log permanently. After a failed fsync the
// page cache's relationship to the disk is unknown — dirty pages may
// have been dropped — so retrying the fsync and reporting success would
// acknowledge records that never reached stable storage (the
// "fsyncgate" class of data loss). Every write after the first failure
// returns ErrWALFailed; the only way back is a process restart, which
// re-reads the log from disk and trusts only what is actually there.
//
// All I/O goes through an fsx.FS so the crash-point harness can fail
// any single operation and kill the process there (see fsx.Faulty).

const (
	walMagic   = "ANNW"
	walVersion = 1
	// walHeaderLen is magic + version.
	walHeaderLen = 4 + 4
	// maxRecordBytes bounds a record frame so a corrupt length field
	// fails fast instead of driving a giant allocation. A record is
	// ~29 bytes + 4 per dimension; 64 MiB allows ~16M dimensions.
	maxRecordBytes = 64 << 20
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALFailed reports a write against a poisoned WAL: an earlier write
// or fsync failed, so the log refuses all further appends rather than
// risk acknowledging records whose durability is unknown. Check with
// errors.Is; the wrapped cause describes the original failure.
var ErrWALFailed = errors.New("store: WAL failed")

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecordUpsert logs one vector insert: (partition, level, id, vector).
	RecordUpsert RecordType = 1
	// RecordDelete logs one tombstone: (id).
	RecordDelete RecordType = 2
	// RecordUpsertTagged logs one vector insert carrying metadata tags:
	// the RecordUpsert layout followed by a tag block. A separate type —
	// rather than fields appended to RecordUpsert — keeps the type-1
	// decoder's strict length check, so logs written by older builds
	// replay unchanged and untagged upserts pay zero overhead.
	RecordUpsertTagged RecordType = 3
	// RecordUpsertText logs one vector insert carrying the raw document
	// text the lexical index tokenizes: the RecordUpsert layout followed
	// by u32 text length + text bytes. Replay re-tokenizes, so the BM25
	// index needs no serialization of its own — the deterministic
	// tokenizer rebuilds it exactly.
	RecordUpsertText RecordType = 4
)

func (t RecordType) String() string {
	switch t {
	case RecordUpsert:
		return "upsert"
	case RecordDelete:
		return "delete"
	case RecordUpsertTagged:
		return "upsert-tagged"
	case RecordUpsertText:
		return "upsert-text"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Tag-block limits: a tag key or value is length-prefixed with u16, and
// one record carries at most maxTagsPerRecord pairs. Bounded so a
// corrupt count fails fast.
const maxTagsPerRecord = 1 << 12

// MaxTextBytes bounds the document text one upsert-text record may
// carry (1 MiB — far beyond short-document BM25's useful range), so a
// corrupt length field fails fast and the gateway can reject oversized
// bodies with a typed error instead of logging them.
const MaxTextBytes = 1 << 20

// Record is one logged mutation. Upserts carry the home partition and
// the HNSW level the insert was assigned, so replay rebuilds a
// structurally identical graph without consulting the level generator.
type Record struct {
	Seq   uint64
	Type  RecordType
	Part  int // upsert: home partition
	Level int // upsert: HNSW level
	ID    int64
	Vec   []float32         // upsert only
	Tags  map[string]string // upsert-tagged only
	Text  string            // upsert-text only
}

// CorruptError reports a WAL frame, snapshot, or manifest that failed
// its length or checksum validation. WantCRC/GotCRC carry the stored
// and computed CRC32-C when the failure is a checksum mismatch.
type CorruptError struct {
	Path    string
	Offset  int64
	Reason  string
	WantCRC uint32 // checksum stored in the frame/manifest
	GotCRC  uint32 // checksum computed over the bytes read
}

func (e *CorruptError) Error() string {
	if e.WantCRC != e.GotCRC {
		return fmt.Sprintf("store: corrupt record in %s at offset %d: %s (want crc32c %08x, got %08x)",
			e.Path, e.Offset, e.Reason, e.WantCRC, e.GotCRC)
	}
	return fmt.Sprintf("store: corrupt record in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// encodeRecord frames r: u32 payload length, u32 CRC32-C of payload,
// payload. Payload layout: type u8, seq u64, id i64, then for upserts
// part u32, level u32, dim u32, dim float32s. Tagged upserts append a
// tag block: u16 pair count, then per pair u16 key length, key bytes,
// u16 value length, value bytes. Text upserts append u32 text length
// and the text bytes.
func encodeRecord(r Record) []byte {
	n := 1 + 8 + 8
	upsert := r.Type == RecordUpsert || r.Type == RecordUpsertTagged || r.Type == RecordUpsertText
	if upsert {
		n += 4 + 4 + 4 + 4*len(r.Vec)
	}
	if r.Type == RecordUpsertText {
		n += 4 + len(r.Text)
	}
	var keys []string
	if r.Type == RecordUpsertTagged {
		n += 2
		keys = make([]string, 0, len(r.Tags))
		for k := range r.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic bytes: same record always encodes identically
		for _, k := range keys {
			n += 2 + len(k) + 2 + len(r.Tags[k])
		}
	}
	buf := make([]byte, 8+n)
	p := buf[8:]
	p[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(p[1:], r.Seq)
	binary.LittleEndian.PutUint64(p[9:], uint64(r.ID))
	if upsert {
		binary.LittleEndian.PutUint32(p[17:], uint32(r.Part))
		binary.LittleEndian.PutUint32(p[21:], uint32(r.Level))
		binary.LittleEndian.PutUint32(p[25:], uint32(len(r.Vec)))
		for i, x := range r.Vec {
			binary.LittleEndian.PutUint32(p[29+4*i:], math.Float32bits(x))
		}
	}
	if r.Type == RecordUpsertTagged {
		off := 29 + 4*len(r.Vec)
		binary.LittleEndian.PutUint16(p[off:], uint16(len(keys)))
		off += 2
		for _, k := range keys {
			v := r.Tags[k]
			binary.LittleEndian.PutUint16(p[off:], uint16(len(k)))
			off += 2
			off += copy(p[off:], k)
			binary.LittleEndian.PutUint16(p[off:], uint16(len(v)))
			off += 2
			off += copy(p[off:], v)
		}
	}
	if r.Type == RecordUpsertText {
		off := 29 + 4*len(r.Vec)
		binary.LittleEndian.PutUint32(p[off:], uint32(len(r.Text)))
		copy(p[off+4:], r.Text)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(n))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(p, crcTable))
	return buf
}

// decodePayload parses a CRC-verified payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 17 {
		return Record{}, fmt.Errorf("payload too short (%d bytes)", len(p))
	}
	r := Record{
		Type: RecordType(p[0]),
		Seq:  binary.LittleEndian.Uint64(p[1:]),
		ID:   int64(binary.LittleEndian.Uint64(p[9:])),
	}
	switch r.Type {
	case RecordDelete:
		return r, nil
	case RecordUpsert, RecordUpsertTagged, RecordUpsertText:
		if len(p) < 29 {
			return Record{}, fmt.Errorf("upsert payload too short (%d bytes)", len(p))
		}
		r.Part = int(binary.LittleEndian.Uint32(p[17:]))
		r.Level = int(binary.LittleEndian.Uint32(p[21:]))
		dim := int(binary.LittleEndian.Uint32(p[25:]))
		if dim < 0 || dim > (maxRecordBytes-29)/4 {
			return Record{}, fmt.Errorf("implausible upsert dim %d", dim)
		}
		vecEnd := 29 + 4*dim
		switch r.Type {
		case RecordUpsert:
			if len(p) != vecEnd {
				return Record{}, fmt.Errorf("upsert payload %d bytes, want %d for dim %d", len(p), vecEnd, dim)
			}
		case RecordUpsertTagged:
			if len(p) < vecEnd+2 {
				return Record{}, fmt.Errorf("tagged upsert payload %d bytes, shorter than vector + tag count for dim %d", len(p), dim)
			}
		case RecordUpsertText:
			if len(p) < vecEnd+4 {
				return Record{}, fmt.Errorf("text upsert payload %d bytes, shorter than vector + text length for dim %d", len(p), dim)
			}
		}
		r.Vec = make([]float32, dim)
		for i := range r.Vec {
			r.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[29+4*i:]))
		}
		if r.Type == RecordUpsertTagged {
			tags, err := decodeTagBlock(p[vecEnd:])
			if err != nil {
				return Record{}, err
			}
			r.Tags = tags
		}
		if r.Type == RecordUpsertText {
			tl := int(binary.LittleEndian.Uint32(p[vecEnd:]))
			if tl > MaxTextBytes {
				return Record{}, fmt.Errorf("implausible text length %d", tl)
			}
			if len(p) != vecEnd+4+tl {
				return Record{}, fmt.Errorf("text upsert payload %d bytes, want %d for dim %d text %d", len(p), vecEnd+4+tl, dim, tl)
			}
			r.Text = string(p[vecEnd+4:])
		}
		return r, nil
	}
	return Record{}, fmt.Errorf("unknown record type %d", p[0])
}

// decodeTagBlock parses the tag block of a tagged upsert, requiring it
// to consume the slice exactly. Keys must be strictly increasing — the
// canonical order encodeRecord writes — so every accepted record
// re-encodes to its exact frame bytes (the round-trip invariant the WAL
// fuzzer checks) and duplicates are impossible.
func decodeTagBlock(b []byte) (map[string]string, error) {
	n := int(binary.LittleEndian.Uint16(b))
	if n > maxTagsPerRecord {
		return nil, fmt.Errorf("implausible tag count %d", n)
	}
	off := 2
	prev := ""
	tags := make(map[string]string, n)
	for i := 0; i < n; i++ {
		var kv [2]string
		for j := 0; j < 2; j++ {
			if off+2 > len(b) {
				return nil, fmt.Errorf("tag block truncated at pair %d", i)
			}
			l := int(binary.LittleEndian.Uint16(b[off:]))
			off += 2
			if off+l > len(b) {
				return nil, fmt.Errorf("tag block truncated at pair %d", i)
			}
			kv[j] = string(b[off : off+l])
			off += l
		}
		if kv[0] == "" {
			return nil, fmt.Errorf("empty tag key at pair %d", i)
		}
		if i > 0 && kv[0] <= prev {
			return nil, fmt.Errorf("tag keys out of canonical order at pair %d", i)
		}
		prev = kv[0]
		tags[kv[0]] = kv[1]
	}
	if off != len(b) {
		return nil, fmt.Errorf("tag block has %d trailing bytes", len(b)-off)
	}
	return tags, nil
}

// walSegment is one on-disk log file.
type walSegment struct {
	path     string
	firstSeq uint64 // first sequence number the segment may contain
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%020d.log", firstSeq)
}

func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%020d.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segments under walDir sorted by firstSeq.
func listSegments(fs fsx.FS, walDir string) ([]walSegment, error) {
	ents, err := fs.ReadDir(walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []walSegment
	for _, e := range ents {
		if seq, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, walSegment{path: filepath.Join(walDir, e.Name()), firstSeq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanRecords streams the CRC-clean records of one segment stream. It
// returns the byte offset just past the last whole, valid record. A
// partial or corrupt frame stops the scan with a *CorruptError at that
// offset; a clean end-of-stream returns nil. path labels errors only.
func scanRecords(br *bufio.Reader, path string, fn func(Record) error) (int64, error) {
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: "short segment header"}
	}
	if string(hdr[:4]) != walMagic {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("bad magic %q", hdr[:4])}
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != walVersion {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	off := int64(walHeaderLen)
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			if err == io.EOF {
				return off, nil // clean end
			}
			return off, &CorruptError{Path: path, Offset: off, Reason: "torn frame header"}
		}
		n := binary.LittleEndian.Uint32(frame[0:])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if n == 0 || n > maxRecordBytes {
			return off, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("implausible record length %d", n)}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, &CorruptError{Path: path, Offset: off, Reason: "torn payload"}
		}
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return off, &CorruptError{Path: path, Offset: off, Reason: "CRC mismatch", WantCRC: crc, GotCRC: got}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return off, &CorruptError{Path: path, Offset: off, Reason: err.Error()}
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += 8 + int64(n)
	}
}

// scanSegment streams the records of one segment file (see scanRecords).
func scanSegment(fs fsx.FS, path string, fn func(Record) error) (int64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return scanRecords(bufio.NewReaderSize(f, 1<<20), path, fn)
}

// ScanWAL streams every record of every segment under dir (a store
// directory) in sequence order. Corruption — including a torn tail —
// stops the scan with a *CorruptError; annwal uses this for -verify and
// -dump, the store itself repairs tails before replaying.
func ScanWAL(dir string, fn func(Record) error) error {
	return scanWAL(fsx.OS{}, dir, fn)
}

func scanWAL(fs fsx.FS, dir string, fn func(Record) error) error {
	segs, err := listSegments(fs, filepath.Join(dir, "wal"))
	if err != nil {
		return err
	}
	for _, s := range segs {
		if _, err := scanSegment(fs, s.path, fn); err != nil {
			return err
		}
	}
	return nil
}

// wal is the append side of the log.
type wal struct {
	fs           fsx.FS
	dir          string // <store>/wal
	syncEvery    int
	syncInterval time.Duration
	segmentBytes int64
	stats        *Stats

	mu       sync.Mutex
	f        fsx.File
	bw       *bufio.Writer
	size     int64
	segs     []walSegment // sorted; last is the active segment
	unsynced int
	dirty    bool
	broken   error // a failed write or fsync poisons the log
	closed   bool

	stopTick chan struct{}
	tickDone chan struct{}
}

// openWAL opens (creating if needed) the log under dir, repairing a
// torn tail in the final segment by truncating it to the last whole
// record. nextSeq names the first segment when none exist.
func openWAL(dir string, nextSeq uint64, opts Options, stats *Stats, logf func(string, ...any)) (*wal, error) {
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	w := &wal{
		fs:           fs,
		dir:          dir,
		syncEvery:    opts.SyncEvery,
		syncInterval: opts.SyncInterval,
		segmentBytes: opts.SegmentBytes,
		stats:        stats,
		segs:         segs,
	}
	if len(segs) == 0 {
		if err := w.createSegment(nextSeq); err != nil {
			return nil, err
		}
	} else {
		// Repair: truncate the last segment past its last whole record —
		// but only if the corruption really is a torn tail. A crash tears
		// appends, so garbage can only be a suffix; a valid record AFTER
		// the corrupt frame means bitrot in acked data, and truncating
		// there would silently drop every record that follows. That must
		// fail loudly instead.
		last := segs[len(segs)-1]
		end, err := scanSegment(fs, last.path, nil)
		if cerr, ok := err.(*CorruptError); ok {
			torn, terr := tornTail(fs, last.path, end)
			if terr != nil {
				return nil, terr
			}
			if !torn {
				return nil, fmt.Errorf("wal: %s has valid records after the corrupt frame at offset %d — mid-log corruption, refusing to repair by truncation (run annwal -verify): %w",
					filepath.Base(last.path), end, cerr)
			}
			logf("wal: truncating torn tail of %s at offset %d (%s)", filepath.Base(last.path), end, cerr.Reason)
			if terr := fs.Truncate(last.path, end); terr != nil {
				return nil, terr
			}
		} else if err != nil {
			return nil, err
		}
		f, err := fs.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.size = end
		w.bw = bufio.NewWriterSize(f, 1<<20)
	}
	if w.syncInterval > 0 {
		w.stopTick = make(chan struct{})
		w.tickDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// tornTail reports whether the corruption at offset off in segment path
// is consistent with a torn append: no whole, CRC-valid record anywhere
// in the bytes past the corrupt frame. Sequential appends mean a crash
// leaves garbage only as a suffix, so finding a valid record later in
// the file proves mid-log bitrot instead.
func tornTail(fs fsx.FS, path string, off int64) (bool, error) {
	f, err := fs.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, err
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		return false, err
	}
	// Slide a candidate frame start past the corrupt one (a valid record
	// cannot begin exactly where the scan already failed).
	for i := 1; i+8 <= len(tail); i++ {
		n := binary.LittleEndian.Uint32(tail[i:])
		if n == 0 || n > maxRecordBytes || i+8+int(n) > len(tail) {
			continue
		}
		payload := tail[i+8 : i+8+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(tail[i+4:]) {
			continue
		}
		if _, err := decodePayload(payload); err == nil {
			return false, nil
		}
	}
	return true, nil
}

// createSegment starts a fresh active segment (caller holds mu or is
// the constructor).
func (w *wal) createSegment(firstSeq uint64) error {
	path := filepath.Join(w.dir, segmentName(firstSeq))
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, walHeaderLen)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.size = walHeaderLen
	w.segs = append(w.segs, walSegment{path: path, firstSeq: firstSeq})
	return nil
}

// poisonLocked records the first failure and permanently disables the
// log (caller holds mu). Returns the typed error writes will see.
func (w *wal) poisonLocked(err error) error {
	if w.broken == nil {
		w.broken = err
		if w.stats != nil {
			w.stats.WALFailures.Add(1)
		}
	}
	return fmt.Errorf("%w: %w", ErrWALFailed, w.broken)
}

// failure returns the poisoning error, or nil while the log is healthy.
func (w *wal) failure() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// append logs one record under the group-commit policy. On return the
// record is in the OS page cache at minimum; it is on stable storage if
// the sync policy fired (SyncEvery<=1 forces that every time).
func (w *wal) append(r Record) error {
	buf := encodeRecord(r)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("%w: %w", ErrWALFailed, w.broken)
	}
	if w.closed {
		return errClosed
	}
	if w.size > walHeaderLen && w.size+int64(len(buf)) > w.segmentBytes {
		if err := w.rotateLocked(r.Seq); err != nil {
			return w.poisonLocked(err)
		}
	}
	if _, err := w.bw.Write(buf); err != nil {
		return w.poisonLocked(err)
	}
	w.size += int64(len(buf))
	w.dirty = true
	w.unsynced++
	if w.stats != nil {
		w.stats.WALAppends.Add(1)
		w.stats.WALBytes.Add(int64(len(buf)))
	}
	if w.syncEvery <= 1 || w.unsynced >= w.syncEvery {
		if err := w.syncLocked(); err != nil {
			return err // syncLocked already poisoned
		}
	}
	return nil
}

// rotateLocked seals the active segment and opens a new one whose name
// is the sequence number of the record about to be written.
func (w *wal) rotateLocked(nextSeq uint64) error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if w.stats != nil {
		w.stats.WALRotations.Add(1)
	}
	return w.createSegment(nextSeq)
}

// syncLocked flushes and fsyncs the active segment. Failure poisons the
// log: after a failed fsync the page cache may silently have dropped
// the dirty data, so a "successful" retry would be a lie (fsyncgate).
func (w *wal) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return w.poisonLocked(err)
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.poisonLocked(err)
	}
	if w.stats != nil {
		w.stats.WALFsyncs.Add(1)
		w.stats.fsyncUS.Push(float64(time.Since(t0).Microseconds()))
	}
	w.dirty = false
	w.unsynced = 0
	return nil
}

// sync forces buffered records to stable storage.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if w.broken != nil {
		return fmt.Errorf("%w: %w", ErrWALFailed, w.broken)
	}
	return w.syncLocked()
}

// flushLoop is the straggler fsync: without it, a trickle of writes
// below SyncEvery would sit in the buffer indefinitely.
func (w *wal) flushLoop() {
	defer close(w.tickDone)
	t := time.NewTicker(w.syncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopTick:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.broken == nil {
				w.syncLocked() // poisons on failure
			}
			w.mu.Unlock()
		}
	}
}

// truncateThrough deletes every sealed segment whose records all have
// seq <= watermark (they are covered by a snapshot). The active segment
// is never removed.
func (w *wal) truncateThrough(watermark uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segs) >= 2 && w.segs[1].firstSeq <= watermark+1 {
		if err := w.fs.Remove(w.segs[0].path); err != nil && !os.IsNotExist(err) {
			return err
		}
		if w.stats != nil {
			w.stats.WALTruncated.Add(1)
		}
		w.segs = w.segs[1:]
	}
	return nil
}

// diskBytes sums the on-disk segment sizes.
func (w *wal) diskBytes() (int64, int) {
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	w.mu.Unlock()
	var total int64
	for _, s := range segs {
		if fi, err := w.fs.Stat(s.path); err == nil {
			total += fi.Size()
		}
	}
	return total, len(segs)
}

// close releases the log. A poisoned log is closed without a final
// sync: retrying a failed fsync cannot make the data durable and must
// not look like it did.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var err error
	if w.broken == nil {
		err = w.syncLocked()
	}
	w.closed = true
	cerr := w.f.Close()
	w.mu.Unlock()
	if w.stopTick != nil {
		close(w.stopTick)
		<-w.tickDone
	}
	if err == nil {
		err = cerr
	}
	return err
}
