package store

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/fsx"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// liveSubset returns ds without the rows whose ids are in dead.
func liveSubset(ds *vec.Dataset, dead map[int64]bool) *vec.Dataset {
	out := vec.NewDataset(ds.Dim, 0)
	for i := 0; i < ds.Len(); i++ {
		if !dead[ds.ID(i)] {
			out.Append(ds.At(i), ds.ID(i))
		}
	}
	return out
}

func queryDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	qs := vec.NewDataset(dim, n)
	for i := 0; i < n; i++ {
		qs.Append(randVec(rng, dim), int64(i))
	}
	return qs
}

// engineRecall measures mean recall@k of the engine against exact truth
// over the given reference set.
func engineRecall(t *testing.T, d *Durable, ref, qs *vec.Dataset, k int) float64 {
	t.Helper()
	truth := bruteforce.GroundTruth(ref, qs, k, vec.L2)
	rows := queryResults(t, d.Engine(), toSlices(qs), k)
	return metrics.MeanRecall(rows, truth)
}

func toSlices(qs *vec.Dataset) [][]float32 {
	out := make([][]float32, qs.Len())
	for i := range out {
		out[i] = qs.At(i)
	}
	return out
}

// TestCompactionRecallAndFootprint churns deletes through the store,
// compacts every qualifying partition, and checks that (a) recall on a
// fixed query set is no worse than before the churn and (b) the
// in-memory and on-disk footprints actually shrank.
func TestCompactionRecallAndFootprint(t *testing.T) {
	dir := t.TempDir()
	e, ds := smallEngine(t, 2000, 17)
	d, err := Create(dir, e, Options{SyncEvery: 16, SegmentBytes: 8192, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(31))
	const k = 10
	qs := queryDataset(rng, 30, 8)
	preRecall := engineRecall(t, d, ds, qs, k)

	// Churn: tombstone ~30% of the rows.
	dead := make(map[int64]bool)
	for len(dead) < 600 {
		id := int64(rng.Intn(2000))
		if !dead[id] {
			dead[id] = true
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	preLen := d.Engine().Len()
	if got := d.Engine().Tombstones(); got != len(dead) {
		t.Fatalf("tombstones %d, want %d", got, len(dead))
	}

	// Compact every partition that holds dead rows (CompactRatio<0
	// disables the background loop but makes every such partition
	// eligible for a manual pass).
	passes := 0
	for {
		p := d.pickPartition()
		if p < 0 {
			break
		}
		if err := d.CompactPartition(p); err != nil {
			t.Fatal(err)
		}
		passes++
		if passes > d.Engine().Partitions() {
			t.Fatal("compaction did not converge")
		}
	}
	if passes == 0 {
		t.Fatal("no partition qualified for compaction")
	}

	// In-memory footprint: dead rows are really gone.
	if got := d.Engine().Len(); got != preLen-len(dead) {
		t.Errorf("engine holds %d rows after compaction, want %d", got, preLen-len(dead))
	}
	if got := d.Engine().Tombstones(); got != 0 {
		t.Errorf("%d tombstones left after compacting all partitions", got)
	}

	// On-disk footprint: the post-compaction checkpoint covers the whole
	// WAL, so only the empty active segment remains.
	st := d.Stats()
	if st.Watermark != st.LastSeq {
		t.Errorf("watermark %d lags last seq %d after compaction checkpoint", st.Watermark, st.LastSeq)
	}
	if st.WALSegments != 1 {
		t.Errorf("%d WAL segments left, want only the active one", st.WALSegments)
	}
	if st.Compactions != int64(passes) || st.Folded != int64(len(dead)) {
		t.Errorf("stats compactions=%d folded=%d, want %d/%d", st.Compactions, st.Folded, passes, len(dead))
	}
	segs, _ := listSegments(fsx.OS{}, filepath.Join(dir, "wal"))
	if len(segs) != 1 {
		t.Errorf("on disk: %d segments, want 1", len(segs))
	}

	// Recall against the live set is no worse than the pre-churn
	// baseline (rebuilt graphs index fewer rows, so it typically rises).
	postRecall := engineRecall(t, d, liveSubset(ds, dead), qs, k)
	if postRecall < preRecall-0.01 {
		t.Errorf("recall dropped after compaction: pre=%.4f post=%.4f", preRecall, postRecall)
	}
	t.Logf("recall pre=%.4f post=%.4f, %d compaction passes", preRecall, postRecall, passes)
}

// TestCompactionConcurrentSearches hammers the engine with searches
// while a compaction swap happens underneath; every result must be
// well-formed and free of tombstoned ids.
func TestCompactionConcurrentSearches(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 1500, 23)
	d, err := Create(dir, e, Options{SyncEvery: 64, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(41))
	dead := make(map[int64]bool)
	for len(dead) < 450 {
		id := int64(rng.Intn(1500))
		if !dead[id] {
			dead[id] = true
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, err := d.Engine().Search(randVec(r, 8), 10)
				if err != nil {
					errc <- err
					return
				}
				seen := make(map[int64]bool, len(rs))
				for _, res := range rs {
					if dead[res.ID] {
						errc <- &CorruptError{Reason: "tombstoned id in results"}
						return
					}
					if seen[res.ID] {
						errc <- &CorruptError{Reason: "duplicate id in results"}
						return
					}
					seen[res.ID] = true
				}
			}
		}(int64(100 + w))
	}

	// Interleave upserts with the compaction passes to exercise the
	// sidelog catch-up path too.
	upserts := 0
	for {
		p := d.pickPartition()
		if p < 0 {
			break
		}
		done := make(chan error, 1)
		go func() { done <- d.CompactPartition(p) }()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			default:
				if err := d.Upsert(randVec(rng, 8), int64(500000+upserts)); err != nil {
					t.Fatal(err)
				}
				upserts++
				time.Sleep(100 * time.Microsecond)
				continue
			}
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent search failed during swap: %v", err)
	default:
	}
	if got := d.Stats().CaughtUp; upserts > 0 && got == 0 {
		t.Logf("note: no sidelog catch-up exercised (%d upserts, all landed outside compacting partitions)", upserts)
	}
	// Every interleaved upsert must have survived the swaps.
	if got := d.Engine().Inserted(); got != int64(upserts) {
		t.Errorf("engine inserted=%d, want %d", got, upserts)
	}
}

// TestAutoCompaction checks the background trigger: past CompactRatio
// the scan loop rebuilds the partition without manual intervention.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 1000, 29)
	d, err := Create(dir, e, Options{
		SyncEvery:       64,
		CompactRatio:    0.2,
		CompactInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(53))
	dead := make(map[int64]bool)
	for len(dead) < 400 {
		id := int64(rng.Intn(1000))
		if !dead[id] {
			dead[id] = true
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if d.Stats().Compactions == 0 {
		t.Fatal("background compactor never fired")
	}
}
