// Package store makes dynamic engine updates durable. The paper serves
// a static snapshot built once by distributed construction; the engine
// grew dynamic Add/Delete (internal/core/dynamic.go) and an HTTP
// gateway, but every mutation lived only in memory — a restart silently
// lost all post-build inserts and resurrected tombstoned IDs. This
// package is the missing persistence layer, the shard-local durability
// primitive web-scale ANN systems (LANNS, HARMONY) build their serving
// tiers on:
//
//   - a CRC-framed, length-prefixed write-ahead log with group-commit
//     fsync batching (wal.go) records every upsert and delete before it
//     is applied;
//   - snapshot + replay recovery: startup loads the newest engine
//     snapshot (core.Engine Save format plus a MANIFEST carrying the
//     WAL sequence watermark) and replays only the WAL tail, truncating
//     segments the snapshot covers;
//   - a background compactor (compact.go) that rebuilds a partition's
//     HNSW graph offline once tombstones pass a configurable ratio,
//     atomically swaps it into the live engine, and writes a fresh
//     snapshot.
//
// Upserts log the HNSW level the insert draws (Engine.DrawLevel), so
// replay via Engine.AddAt rebuilds a structurally identical graph:
// recovery restores the exact pre-crash search state, not merely an
// equivalent dataset.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

var (
	// ErrNoStore reports an Open on a directory with no snapshot.
	ErrNoStore = errors.New("store: no snapshot in directory (use Create)")
	// errClosed reports use after Close.
	errClosed = errors.New("store: closed")
)

// Options tunes durability and compaction.
type Options struct {
	// SyncEvery fsyncs the WAL after this many records; 1 makes every
	// mutation durable before its call returns, larger values group-
	// commit (default 64). A crash loses at most the unsynced tail.
	SyncEvery int
	// SyncInterval bounds how long a record below the SyncEvery
	// threshold may sit unsynced (default 50ms; negative disables the
	// background fsync).
	SyncInterval time.Duration
	// SegmentBytes rotates the WAL past this size (default 64 MiB).
	SegmentBytes int64
	// CompactRatio triggers a partition rebuild once its
	// tombstoned/live row ratio exceeds this (default 0.25; negative
	// disables automatic compaction — CompactPartition still works).
	CompactRatio float64
	// CompactInterval is the compactor's scan period (default 2s).
	CompactInterval time.Duration
	// Threads is the rebuild parallelism (default GOMAXPROCS).
	Threads int
	// Logf, when non-nil, receives recovery and compaction progress.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.25
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = 2 * time.Second
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// manifest is the store's root pointer: which snapshot is current and
// the WAL sequence number it covers. Written atomically (tmp + rename +
// dir fsync), so a crash mid-checkpoint leaves the previous manifest in
// force and the previous snapshot intact.
type manifest struct {
	Snapshot  string `json:"snapshot"`  // snapshot file name within the store dir
	Watermark uint64 `json:"watermark"` // last WAL seq folded into the snapshot

	// Engine.Save captures the routing tree and graphs but not the
	// dynamic update state, so the manifest carries it: IDs tombstoned
	// as of the snapshot (their delete records are truncated with the
	// WAL) and the engine's inserted counter.
	Tombstones []int64 `json:"tombstones,omitempty"`
	Inserted   int64   `json:"inserted,omitempty"`
}

const manifestName = "MANIFEST"

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%020d.ann", seq) }

func writeManifest(dir string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest loads the manifest; when it is missing but snapshots
// exist (crash between snapshot rename and manifest write), the newest
// snapshot wins.
func readManifest(dir string) (manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err == nil {
		var m manifest
		if jerr := json.Unmarshal(b, &m); jerr != nil {
			return manifest{}, fmt.Errorf("store: corrupt MANIFEST in %s: %w", dir, jerr)
		}
		return m, nil
	}
	if !os.IsNotExist(err) {
		return manifest{}, err
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ann"))
	if len(snaps) == 0 {
		return manifest{}, ErrNoStore
	}
	sort.Strings(snaps)
	newest := filepath.Base(snaps[len(snaps)-1])
	var seq uint64
	if _, err := fmt.Sscanf(newest, "snap-%020d.ann", &seq); err != nil {
		return manifest{}, fmt.Errorf("store: unparseable snapshot name %q", newest)
	}
	return manifest{Snapshot: newest, Watermark: seq}, nil
}

// sideRec is an insert that raced a compaction of its home partition;
// it is re-applied to the rebuilt graph before the swap.
type sideRec struct {
	v     []float32
	id    int64
	level int
}

// Durable wraps a core.Engine with write-ahead logging, snapshot
// recovery, and background compaction. All mutations must go through
// it; searches go straight to Engine() and never block on the log.
type Durable struct {
	dir  string
	opts Options

	// mu serializes mutations, checkpointing, and compaction
	// bookkeeping. Searches do not take it.
	mu         sync.Mutex
	eng        *core.Engine
	wal        *wal
	seq        uint64 // last sequence number appended
	snapSeq    uint64 // watermark of the newest on-disk snapshot
	compacting int    // partition being rebuilt, -1 when idle
	sidelog    []sideRec
	closed     bool

	stats Stats

	stopCompact chan struct{}
	compactDone chan struct{}
}

// Create initialises dir as a durable store over a freshly built
// engine: writes the initial snapshot, opens an empty WAL, and starts
// the compactor. Fails if dir already holds a store (use Open).
func Create(dir string, e *core.Engine, opts Options) (*Durable, error) {
	opts.fill()
	if e.LocalKind() != "hnsw" {
		return nil, fmt.Errorf("store: engine local index %q does not support insertion (need hnsw)", e.LocalKind())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := readManifest(dir); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store (use Open)", dir)
	} else if err != ErrNoStore {
		return nil, err
	}
	d := &Durable{dir: dir, opts: opts, eng: e, compacting: -1}
	if err := d.checkpointLocked(); err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal"), 1, opts, &d.stats, opts.Logf)
	if err != nil {
		return nil, err
	}
	d.wal = w
	d.startCompactor()
	return d, nil
}

// Open recovers a store: loads the manifest's snapshot, repairs a torn
// WAL tail, replays records past the snapshot's watermark, and resumes.
// The recovered engine answers searches exactly as the pre-crash one
// did for every synced mutation.
func Open(dir string, opts Options) (*Durable, error) {
	opts.fill()
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("store: manifest names snapshot %s: %w", m.Snapshot, err)
	}
	e, err := core.LoadEngine(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("store: loading snapshot %s: %w", m.Snapshot, err)
	}
	// The snapshot file holds the graphs; the tombstone set and inserted
	// counter as of the watermark ride in the manifest (their WAL
	// records were truncated by the checkpoint that wrote it).
	e.RestoreDynamic(m.Tombstones, m.Inserted)
	d := &Durable{dir: dir, opts: opts, eng: e, compacting: -1, seq: m.Watermark, snapSeq: m.Watermark}

	// Opening the WAL first repairs any torn tail, so replay below sees
	// only whole records.
	w, err := openWAL(filepath.Join(dir, "wal"), m.Watermark+1, opts, &d.stats, opts.Logf)
	if err != nil {
		return nil, err
	}
	d.wal = w
	replayed := 0
	err = ScanWAL(dir, func(r Record) error {
		if r.Seq <= m.Watermark {
			return nil
		}
		if r.Seq != d.seq+1 {
			return fmt.Errorf("store: WAL sequence gap: have %d, next record is %d", d.seq, r.Seq)
		}
		switch r.Type {
		case RecordUpsert:
			if err := e.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
				return fmt.Errorf("store: replaying seq %d: %w", r.Seq, err)
			}
		case RecordDelete:
			e.Delete(r.ID)
		default:
			return fmt.Errorf("store: replaying seq %d: unknown type %d", r.Seq, r.Type)
		}
		d.seq = r.Seq
		replayed++
		return nil
	})
	if err != nil {
		w.close()
		return nil, err
	}
	d.stats.Replayed.Store(int64(replayed))
	opts.Logf("store: recovered %s: snapshot %s (watermark %d) + %d replayed WAL records",
		dir, m.Snapshot, m.Watermark, replayed)
	d.startCompactor()
	return d, nil
}

// OpenOrCreate opens dir if it holds a store, otherwise builds an
// engine with build and Creates one.
func OpenOrCreate(dir string, build func() (*core.Engine, error), opts Options) (*Durable, error) {
	d, err := Open(dir, opts)
	if err == nil {
		return d, nil
	}
	if !errors.Is(err, ErrNoStore) {
		return nil, err
	}
	e, err := build()
	if err != nil {
		return nil, err
	}
	return Create(dir, e, opts)
}

// Engine returns the wrapped engine for searching. Do not mutate it
// directly — Add/Delete calls that bypass the store are lost on
// restart.
func (d *Durable) Engine() *core.Engine { return d.eng }

// Dir returns the store directory.
func (d *Durable) Dir() string { return d.dir }

// Upsert durably inserts a vector: the mutation is logged (with its
// routed partition and drawn HNSW level) before it is applied.
func (d *Durable) Upsert(v []float32, id int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	home, err := d.eng.Home(v)
	if err != nil {
		return err
	}
	level, err := d.eng.DrawLevel(home)
	if err != nil {
		return err
	}
	rec := Record{Seq: d.seq + 1, Type: RecordUpsert, Part: home, Level: level, ID: id, Vec: v}
	if err := d.wal.append(rec); err != nil {
		return err
	}
	d.seq++
	if err := d.eng.AddAt(home, v, id, level); err != nil {
		return err
	}
	d.stats.Upserts.Add(1)
	if d.compacting == home {
		d.sidelog = append(d.sidelog, sideRec{v: append([]float32(nil), v...), id: id, level: level})
	}
	return nil
}

// Delete durably tombstones an ID (idempotent, like Engine.Delete).
func (d *Durable) Delete(id int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if err := d.wal.append(Record{Seq: d.seq + 1, Type: RecordDelete, ID: id}); err != nil {
		return err
	}
	d.seq++
	d.eng.Delete(id)
	d.stats.Deletes.Add(1)
	return nil
}

// Sync forces every appended record to stable storage.
func (d *Durable) Sync() error { return d.wal.sync() }

// Checkpoint writes a fresh snapshot at the current watermark and
// truncates WAL segments it covers. Mutations block for the duration
// (searches do not).
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	return d.checkpointLocked()
}

// checkpointLocked writes snap-<seq>.ann atomically, repoints the
// manifest, deletes superseded snapshots and WAL segments.
func (d *Durable) checkpointLocked() error {
	seq := d.seq
	name := snapshotName(seq)
	tmp := filepath.Join(d.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := d.eng.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	tombs := d.eng.TombstoneIDs()
	sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	if err := writeManifest(d.dir, manifest{
		Snapshot:   name,
		Watermark:  seq,
		Tombstones: tombs,
		Inserted:   d.eng.Inserted(),
	}); err != nil {
		return err
	}
	// The manifest now points at the new snapshot; older snapshots and
	// covered WAL segments are garbage.
	if snaps, err := filepath.Glob(filepath.Join(d.dir, "snap-*.ann")); err == nil {
		for _, s := range snaps {
			if filepath.Base(s) != name {
				os.Remove(s)
			}
		}
	}
	if d.wal != nil {
		if err := d.wal.truncateThrough(seq); err != nil {
			return err
		}
	}
	d.snapSeq = seq
	d.stats.Snapshots.Add(1)
	d.opts.Logf("store: checkpoint %s (watermark %d)", name, seq)
	return nil
}

// Close stops the compactor, syncs the WAL, and releases files. It does
// not checkpoint; the next Open replays the WAL tail.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.stopCompactor()
	return d.wal.close()
}
