// Package store makes dynamic engine updates durable. The paper serves
// a static snapshot built once by distributed construction; the engine
// grew dynamic Add/Delete (internal/core/dynamic.go) and an HTTP
// gateway, but every mutation lived only in memory — a restart silently
// lost all post-build inserts and resurrected tombstoned IDs. This
// package is the missing persistence layer, the shard-local durability
// primitive web-scale ANN systems (LANNS, HARMONY) build their serving
// tiers on:
//
//   - a CRC-framed, length-prefixed write-ahead log with group-commit
//     fsync batching (wal.go) records every upsert and delete before it
//     is applied;
//   - snapshot + replay recovery: startup loads the newest engine
//     snapshot (core.Engine Save format plus a MANIFEST carrying the
//     WAL sequence watermark) and replays only the WAL tail, truncating
//     segments the snapshot covers;
//   - a background compactor (compact.go) that rebuilds a partition's
//     HNSW graph offline once tombstones pass a configurable ratio,
//     atomically swaps it into the live engine, and writes a fresh
//     snapshot.
//
// Upserts log the HNSW level the insert draws (Engine.DrawLevel), so
// replay via Engine.AddAt rebuilds a structurally identical graph:
// recovery restores the exact pre-crash search state, not merely an
// equivalent dataset.
//
// The store assumes the disk FAILS. Every I/O operation goes through an
// fsx.FS (fault-injectable in tests), and the failure semantics are
// explicit:
//
//   - a failed WAL fsync permanently poisons the writer — all further
//     writes return ErrWALFailed, never a silent retry (wal.go);
//   - the manifest and snapshots are CRC32-C checksummed; a corrupt
//     snapshot generation is quarantined (renamed *.corrupt) and
//     recovery falls back to the previous generation plus a longer WAL
//     replay — the store retains two snapshot generations and the WAL
//     back to the older one's watermark for exactly this;
//   - a corrupt manifest or mid-WAL corruption fails Open loudly with
//     a typed *CorruptError: that is real data loss and must page an
//     operator, not limp onward;
//   - stale *.tmp files from interrupted atomic renames are swept on
//     Open.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/lexical"
)

var (
	// ErrNoStore reports an Open on a directory with no snapshot.
	ErrNoStore = errors.New("store: no snapshot in directory (use Create)")
	// errClosed reports use after Close.
	errClosed = errors.New("store: closed")
)

// Options tunes durability and compaction.
type Options struct {
	// SyncEvery fsyncs the WAL after this many records; 1 makes every
	// mutation durable before its call returns, larger values group-
	// commit (default 64). A crash loses at most the unsynced tail.
	SyncEvery int
	// SyncInterval bounds how long a record below the SyncEvery
	// threshold may sit unsynced (default 50ms; negative disables the
	// background fsync).
	SyncInterval time.Duration
	// SegmentBytes rotates the WAL past this size (default 64 MiB).
	SegmentBytes int64
	// CompactRatio triggers a partition rebuild once its
	// tombstoned/live row ratio exceeds this (default 0.25; negative
	// disables automatic compaction — CompactPartition still works).
	CompactRatio float64
	// CompactInterval is the compactor's scan period (default 2s).
	CompactInterval time.Duration
	// Threads is the rebuild parallelism (default GOMAXPROCS).
	Threads int
	// FS is the filesystem all store I/O goes through (default the
	// real OS). Tests and chaos drills inject fsx.Faulty here.
	FS fsx.FS
	// Lexical, when non-nil, configures the engine's BM25 index (k1, b,
	// stopwords) before any text is restored or replayed. Tokenization
	// happens at indexing time, so recovery must apply the same
	// parameters the writer used — collections plumb their
	// collection.json lexical settings through here.
	Lexical *lexical.Config
	// Logf, when non-nil, receives recovery and compaction progress.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.25
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = 2 * time.Second
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.FS == nil {
		o.FS = fsx.OS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// generation is one recoverable snapshot: the engine image plus the
// dynamic state (tombstones, inserted counter) as of its watermark,
// which Engine.Save does not capture and whose WAL records are
// truncated once covered.
type generation struct {
	Snapshot  string `json:"snapshot"`         // snapshot file name within the store dir
	Watermark uint64 `json:"watermark"`        // last WAL seq folded into the snapshot
	CRC       uint32 `json:"crc32c,omitempty"` // CRC32-C of the snapshot file (0 = legacy, unverifiable)
	Bytes     int64  `json:"bytes,omitempty"`  // snapshot file size

	Tombstones []int64 `json:"tombstones,omitempty"`
	Inserted   int64   `json:"inserted,omitempty"`

	// Tags is the per-vector metadata sidecar (tags-<seq>.json) holding
	// the tag store as of the watermark, absent when no vector carries
	// tags. It is checksummed like the snapshot: a corrupt sidecar fails
	// the whole generation (serving matching vectors with silently lost
	// filters would be worse than falling back a generation).
	Tags      string `json:"tags,omitempty"`
	TagsCRC   uint32 `json:"tags_crc32c,omitempty"`
	TagsBytes int64  `json:"tags_bytes,omitempty"`

	// Text is the lexical-document sidecar (text-<seq>.json) holding
	// every indexed document (raw text + vector copy) as of the
	// watermark, absent when no document is indexed. Checksummed like
	// the tags sidecar: a corrupt sidecar quarantines the generation and
	// recovery falls back to the previous one plus a longer WAL replay,
	// so the BM25 index is never silently partial.
	Text      string `json:"text,omitempty"`
	TextCRC   uint32 `json:"text_crc32c,omitempty"`
	TextBytes int64  `json:"text_bytes,omitempty"`
}

// manifest is the store's root pointer. Generations are ordered newest
// first; the store retains two (current + previous) so a corrupt
// current snapshot can fall back to the previous one plus a longer WAL
// replay. Written atomically (tmp + rename + dir fsync) inside a
// checksummed envelope, so a crash mid-checkpoint leaves the previous
// manifest in force and torn manifest writes are detected, not parsed.
type manifest struct {
	Generations []generation `json:"generations"`
}

// manifestEnvelope is the on-disk MANIFEST format: the manifest JSON as
// an opaque payload plus its CRC32-C. Legacy stores (no envelope) are
// still readable; they simply cannot be checksum-verified.
type manifestEnvelope struct {
	Payload json.RawMessage `json:"payload"`
	CRC     uint32          `json:"crc32c"`
}

// legacyManifest is the pre-envelope single-generation MANIFEST shape.
type legacyManifest struct {
	Snapshot   string  `json:"snapshot"`
	Watermark  uint64  `json:"watermark"`
	Tombstones []int64 `json:"tombstones,omitempty"`
	Inserted   int64   `json:"inserted,omitempty"`
}

const (
	manifestName = "MANIFEST"
	// corruptSuffix marks quarantined files: renamed aside so recovery
	// stops tripping over them but an operator can still inspect.
	corruptSuffix = ".corrupt"
	// maxGenerations bounds how many snapshot generations the store
	// retains (and how far back the WAL reaches).
	maxGenerations = 2
)

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%020d.ann", seq) }

func tagsName(seq uint64) string { return fmt.Sprintf("tags-%020d.json", seq) }

// tagsFile is the on-disk shape of the tags sidecar.
type tagsFile struct {
	Tags map[int64]map[string]string `json:"tags"`
}

func textsName(seq uint64) string { return fmt.Sprintf("text-%020d.json", seq) }

// textsFile is the on-disk shape of the lexical-document sidecar. Raw
// text (not postings) is persisted: the deterministic tokenizer
// rebuilds the inverted index on load, so the format stays independent
// of index internals.
type textsFile struct {
	Docs map[int64]lexical.Doc `json:"docs"`
}

func writeManifest(fs fsx.FS, dir string, m manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b, err := json.Marshal(manifestEnvelope{
		Payload: payload,
		CRC:     crc32.Checksum(payload, crcTable),
	})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// readManifest loads and checksum-verifies the manifest. A corrupt
// manifest is a typed *CorruptError — with both generations' metadata
// gone there is nothing safe to fall back to, so this fails loudly
// rather than guess. When the manifest is missing but snapshots exist
// (crash between snapshot rename and the very first manifest write),
// the newest snapshot wins, unverifiable.
func readManifest(fs fsx.FS, dir string) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	b, err := fs.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return manifest{}, err
		}
		snaps, gerr := fsx.Glob(fs, filepath.Join(dir, "snap-*.ann"))
		if gerr != nil {
			return manifest{}, gerr
		}
		if len(snaps) == 0 {
			return manifest{}, ErrNoStore
		}
		sort.Strings(snaps)
		newest := filepath.Base(snaps[len(snaps)-1])
		var seq uint64
		if _, err := fmt.Sscanf(newest, "snap-%020d.ann", &seq); err != nil {
			return manifest{}, fmt.Errorf("store: unparseable snapshot name %q", newest)
		}
		return manifest{Generations: []generation{{Snapshot: newest, Watermark: seq}}}, nil
	}
	var env manifestEnvelope
	if jerr := json.Unmarshal(b, &env); jerr != nil {
		return manifest{}, &CorruptError{Path: path, Reason: "manifest is not JSON: " + jerr.Error()}
	}
	if env.Payload == nil {
		// Legacy plain-JSON manifest: single generation, no checksum.
		var lm legacyManifest
		if jerr := json.Unmarshal(b, &lm); jerr != nil || lm.Snapshot == "" {
			return manifest{}, &CorruptError{Path: path, Reason: "manifest carries neither an envelope nor a legacy snapshot pointer"}
		}
		return manifest{Generations: []generation{{
			Snapshot: lm.Snapshot, Watermark: lm.Watermark,
			Tombstones: lm.Tombstones, Inserted: lm.Inserted,
		}}}, nil
	}
	if got := crc32.Checksum(env.Payload, crcTable); got != env.CRC {
		return manifest{}, &CorruptError{Path: path, Reason: "manifest CRC mismatch", WantCRC: env.CRC, GotCRC: got}
	}
	var m manifest
	if jerr := json.Unmarshal(env.Payload, &m); jerr != nil {
		return manifest{}, &CorruptError{Path: path, Reason: "manifest payload: " + jerr.Error()}
	}
	if len(m.Generations) == 0 {
		return manifest{}, &CorruptError{Path: path, Reason: "manifest has no generations"}
	}
	return m, nil
}

// GenerationInfo describes one retained snapshot generation, newest
// first (tooling surface; annwal).
type GenerationInfo struct {
	Snapshot   string `json:"snapshot"`
	Watermark  uint64 `json:"watermark"`
	CRC        uint32 `json:"crc32c"`
	Bytes      int64  `json:"bytes"`
	Tombstones int    `json:"tombstones"`
}

// Manifest reads and checksum-verifies dir's manifest, returning the
// retained generations. A corrupt manifest is a *CorruptError.
func Manifest(dir string) ([]GenerationInfo, error) {
	m, err := readManifest(fsx.OS{}, dir)
	if err != nil {
		return nil, err
	}
	out := make([]GenerationInfo, len(m.Generations))
	for i, g := range m.Generations {
		out[i] = GenerationInfo{
			Snapshot: g.Snapshot, Watermark: g.Watermark,
			CRC: g.CRC, Bytes: g.Bytes, Tombstones: len(g.Tombstones),
		}
	}
	return out, nil
}

// sweepTemps removes stale *.tmp files a crashed atomic rename left in
// the store directory, returning how many were removed.
func sweepTemps(fs fsx.FS, dir string, logf func(string, ...any)) (int, error) {
	stale, err := fsx.Glob(fs, filepath.Join(dir, "*.tmp"))
	if err != nil {
		return 0, err
	}
	for _, p := range stale {
		if err := fs.Remove(p); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("store: sweeping stale temp %s: %w", p, err)
		}
		logf("store: swept stale temp file %s", filepath.Base(p))
	}
	return len(stale), nil
}

// loadGeneration reads, checksum-verifies, and decodes one snapshot
// generation. A checksum mismatch or undecodable image is a
// *CorruptError (wrapped), telling Open to quarantine and fall back.
func loadGeneration(fs fsx.FS, dir string, g generation, lex *lexical.Config) (*core.Engine, error) {
	path := filepath.Join(dir, g.Snapshot)
	b, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot %s: %w", g.Snapshot, err)
	}
	if g.CRC != 0 {
		if got := crc32.Checksum(b, crcTable); got != g.CRC {
			return nil, &CorruptError{Path: path, Reason: "snapshot CRC mismatch", WantCRC: g.CRC, GotCRC: got}
		}
	}
	e, err := core.LoadEngine(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("store: decoding snapshot %s: %w", g.Snapshot, err)
	}
	// BM25 parameters must be in force before any text is restored or
	// replayed — tokenization happens at indexing time.
	if lex != nil {
		if err := e.SetLexicalConfig(*lex); err != nil {
			return nil, err
		}
	}
	// The snapshot file holds the graphs; the tombstone set and inserted
	// counter as of the watermark ride in the manifest (their WAL
	// records were truncated by the checkpoint that wrote them).
	e.RestoreDynamic(g.Tombstones, g.Inserted)
	// Per-vector tags ride in a checksummed sidecar; loading it is part
	// of the generation's verification, so a lost or corrupt sidecar
	// fails the generation rather than silently dropping every filter.
	if g.Tags != "" {
		tpath := filepath.Join(dir, g.Tags)
		tb, err := fs.ReadFile(tpath)
		if err != nil {
			return nil, fmt.Errorf("store: reading tags sidecar %s: %w", g.Tags, err)
		}
		if g.TagsCRC != 0 {
			if got := crc32.Checksum(tb, crcTable); got != g.TagsCRC {
				return nil, &CorruptError{Path: tpath, Reason: "tags sidecar CRC mismatch", WantCRC: g.TagsCRC, GotCRC: got}
			}
		}
		var tf tagsFile
		if jerr := json.Unmarshal(tb, &tf); jerr != nil {
			return nil, &CorruptError{Path: tpath, Reason: "tags sidecar is not JSON: " + jerr.Error()}
		}
		e.RestoreTags(tf.Tags)
	}
	// Lexical documents likewise: a lost or corrupt sidecar fails the
	// generation rather than serving hybrid queries over a silently
	// emptied index.
	if g.Text != "" {
		xpath := filepath.Join(dir, g.Text)
		xb, err := fs.ReadFile(xpath)
		if err != nil {
			return nil, fmt.Errorf("store: reading text sidecar %s: %w", g.Text, err)
		}
		if g.TextCRC != 0 {
			if got := crc32.Checksum(xb, crcTable); got != g.TextCRC {
				return nil, &CorruptError{Path: xpath, Reason: "text sidecar CRC mismatch", WantCRC: g.TextCRC, GotCRC: got}
			}
		}
		var xf textsFile
		if jerr := json.Unmarshal(xb, &xf); jerr != nil {
			return nil, &CorruptError{Path: xpath, Reason: "text sidecar is not JSON: " + jerr.Error()}
		}
		e.RestoreTexts(xf.Docs)
	}
	return e, nil
}

// Durable wraps a core.Engine with write-ahead logging, snapshot
// recovery, and background compaction. All mutations must go through
// it; searches go straight to Engine() and never block on the log.
type Durable struct {
	dir  string
	opts Options

	// mu serializes mutations, checkpointing, and compaction
	// bookkeeping. Searches do not take it.
	mu         sync.Mutex
	eng        *core.Engine
	wal        *wal
	seq        uint64       // last sequence number appended
	gens       []generation // on-disk generations in force, newest first
	compacting int          // partition being rebuilt, -1 when idle
	sidelog    []sideRec
	closed     bool

	stats Stats

	stopCompact chan struct{}
	compactDone chan struct{}
}

// sideRec is an insert that raced a compaction of its home partition;
// it is re-applied to the rebuilt graph before the swap.
type sideRec struct {
	v     []float32
	id    int64
	level int
}

// Create initialises dir as a durable store over a freshly built
// engine: writes the initial snapshot, opens an empty WAL, and starts
// the compactor. Fails if dir already holds a store (use Open).
func Create(dir string, e *core.Engine, opts Options) (*Durable, error) {
	opts.fill()
	if e.LocalKind() != "hnsw" {
		return nil, fmt.Errorf("store: engine local index %q does not support insertion (need hnsw)", e.LocalKind())
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := readManifest(opts.FS, dir); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store (use Open)", dir)
	} else if err != ErrNoStore {
		return nil, err
	}
	if opts.Lexical != nil {
		if err := e.SetLexicalConfig(*opts.Lexical); err != nil {
			return nil, err
		}
	}
	d := &Durable{dir: dir, opts: opts, eng: e, compacting: -1}
	if err := d.checkpointLocked(); err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal"), 1, opts, &d.stats, opts.Logf)
	if err != nil {
		return nil, err
	}
	d.wal = w
	d.startCompactor()
	return d, nil
}

// Open recovers a store: loads the manifest's newest usable snapshot
// generation (quarantining corrupt ones and falling back to the
// previous), repairs a torn WAL tail, replays records past the loaded
// generation's watermark, and resumes. The recovered engine answers
// searches exactly as the pre-crash one did for every synced mutation;
// unrecoverable corruption is a typed error, never a silent divergence.
func Open(dir string, opts Options) (*Durable, error) {
	opts.fill()
	fs := opts.FS
	swept, err := sweepTemps(fs, dir, opts.Logf)
	if err != nil {
		return nil, err
	}
	m, err := readManifest(fs, dir)
	if err != nil {
		return nil, err
	}

	// Walk the generations newest-first; quarantine what fails
	// verification and fall back.
	var (
		e       *core.Engine
		gen     generation
		genErrs []error
	)
	for _, g := range m.Generations {
		le, lerr := loadGeneration(fs, dir, g, opts.Lexical)
		if lerr == nil {
			e, gen = le, g
			break
		}
		genErrs = append(genErrs, lerr)
		opts.Logf("store: snapshot generation %s unusable (%v); quarantining and falling back", g.Snapshot, lerr)
		bad := []string{filepath.Join(dir, g.Snapshot)}
		if g.Tags != "" {
			bad = append(bad, filepath.Join(dir, g.Tags))
		}
		if g.Text != "" {
			bad = append(bad, filepath.Join(dir, g.Text))
		}
		for _, b := range bad {
			if qerr := fs.Rename(b, b+corruptSuffix); qerr != nil && !os.IsNotExist(qerr) {
				opts.Logf("store: quarantine of %s failed: %v", filepath.Base(b), qerr)
			}
		}
	}
	if e == nil {
		return nil, fmt.Errorf("store: no usable snapshot generation in %s (all %d quarantined): %w",
			dir, len(genErrs), errors.Join(genErrs...))
	}

	d := &Durable{dir: dir, opts: opts, eng: e, compacting: -1, seq: gen.Watermark, gens: []generation{gen}}
	d.stats.TmpSwept.Store(int64(swept))
	d.stats.Quarantined.Store(int64(len(genErrs)))
	if len(genErrs) > 0 {
		d.stats.Fallbacks.Store(1)
	}

	// Opening the WAL first repairs any torn tail, so replay below sees
	// only whole records.
	w, err := openWAL(filepath.Join(dir, "wal"), gen.Watermark+1, opts, &d.stats, opts.Logf)
	if err != nil {
		return nil, err
	}
	d.wal = w
	replayed := 0
	err = scanWAL(fs, dir, func(r Record) error {
		if r.Seq <= gen.Watermark {
			return nil
		}
		if r.Seq != d.seq+1 {
			return fmt.Errorf("store: WAL sequence gap: have %d, next record is %d", d.seq, r.Seq)
		}
		switch r.Type {
		case RecordUpsert:
			if err := e.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
				return fmt.Errorf("store: replaying seq %d: %w", r.Seq, err)
			}
		case RecordUpsertTagged:
			if err := e.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
				return fmt.Errorf("store: replaying seq %d: %w", r.Seq, err)
			}
			e.SetTags(r.ID, r.Tags)
		case RecordUpsertText:
			if err := e.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
				return fmt.Errorf("store: replaying seq %d: %w", r.Seq, err)
			}
			e.SetText(r.ID, r.Text, r.Vec)
		case RecordDelete:
			e.Delete(r.ID)
		default:
			return fmt.Errorf("store: replaying seq %d: unknown type %d", r.Seq, r.Type)
		}
		d.seq = r.Seq
		replayed++
		return nil
	})
	if err != nil {
		w.close()
		return nil, err
	}
	d.stats.Replayed.Store(int64(replayed))
	opts.Logf("store: recovered %s: snapshot %s (watermark %d) + %d replayed WAL records",
		dir, gen.Snapshot, gen.Watermark, replayed)
	d.startCompactor()
	return d, nil
}

// OpenOrCreate opens dir if it holds a store, otherwise builds an
// engine with build and Creates one.
func OpenOrCreate(dir string, build func() (*core.Engine, error), opts Options) (*Durable, error) {
	d, err := Open(dir, opts)
	if err == nil {
		return d, nil
	}
	if !errors.Is(err, ErrNoStore) {
		return nil, err
	}
	e, err := build()
	if err != nil {
		return nil, err
	}
	return Create(dir, e, opts)
}

// Engine returns the wrapped engine for searching. Do not mutate it
// directly — Add/Delete calls that bypass the store are lost on
// restart.
func (d *Durable) Engine() *core.Engine { return d.eng }

// Dir returns the store directory.
func (d *Durable) Dir() string { return d.dir }

// Failed returns the error that poisoned the write path, or nil while
// it is healthy. Once non-nil it stays non-nil: recovery from a storage
// failure requires a restart, which re-reads the log and trusts only
// what is on disk. Searches are unaffected. The serving gateway's
// circuit breaker keys off this.
func (d *Durable) Failed() error { return d.wal.failure() }

// Upsert durably inserts a vector: the mutation is logged (with its
// routed partition and drawn HNSW level) before it is applied. After a
// storage failure every call returns ErrWALFailed.
func (d *Durable) Upsert(v []float32, id int64) error {
	return d.upsert(v, id, nil, false)
}

// UpsertTagged durably inserts a vector together with its metadata
// tags, in one WAL record: replay restores both or neither. A nil or
// empty tags map clears any tags id carried (matching Engine.SetTags).
func (d *Durable) UpsertTagged(v []float32, id int64, tags map[string]string) error {
	return d.upsert(v, id, tags, true)
}

// UpsertText durably inserts a vector together with the document text
// the lexical index tokenizes, in one WAL record: replay restores both
// or neither, so the BM25 index can never reference a vector the graph
// lost (or vice versa).
func (d *Durable) UpsertText(v []float32, id int64, text string) error {
	if len(text) > MaxTextBytes {
		return fmt.Errorf("store: document text %d bytes exceeds limit %d", len(text), MaxTextBytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	home, err := d.eng.Home(v)
	if err != nil {
		return err
	}
	level, err := d.eng.DrawLevel(home)
	if err != nil {
		return err
	}
	rec := Record{Seq: d.seq + 1, Type: RecordUpsertText, Part: home, Level: level, ID: id, Vec: v, Text: text}
	if err := d.wal.append(rec); err != nil {
		return err
	}
	d.seq++
	if err := d.eng.AddAt(home, v, id, level); err != nil {
		return err
	}
	d.eng.SetText(id, text, v)
	d.stats.Upserts.Add(1)
	if d.compacting == home {
		d.sidelog = append(d.sidelog, sideRec{v: append([]float32(nil), v...), id: id, level: level})
	}
	return nil
}

func (d *Durable) upsert(v []float32, id int64, tags map[string]string, tagged bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	home, err := d.eng.Home(v)
	if err != nil {
		return err
	}
	level, err := d.eng.DrawLevel(home)
	if err != nil {
		return err
	}
	rec := Record{Seq: d.seq + 1, Type: RecordUpsert, Part: home, Level: level, ID: id, Vec: v}
	if tagged {
		rec.Type = RecordUpsertTagged
		rec.Tags = tags
	}
	if err := d.wal.append(rec); err != nil {
		return err
	}
	d.seq++
	if err := d.eng.AddAt(home, v, id, level); err != nil {
		return err
	}
	if tagged {
		d.eng.SetTags(id, tags)
	}
	d.stats.Upserts.Add(1)
	if d.compacting == home {
		d.sidelog = append(d.sidelog, sideRec{v: append([]float32(nil), v...), id: id, level: level})
	}
	return nil
}

// Delete durably tombstones an ID (idempotent, like Engine.Delete).
func (d *Durable) Delete(id int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if err := d.wal.append(Record{Seq: d.seq + 1, Type: RecordDelete, ID: id}); err != nil {
		return err
	}
	d.seq++
	d.eng.Delete(id)
	d.stats.Deletes.Add(1)
	return nil
}

// Sync forces every appended record to stable storage.
func (d *Durable) Sync() error { return d.wal.sync() }

// Checkpoint writes a fresh snapshot at the current watermark and
// truncates WAL segments it covers. Mutations block for the duration
// (searches do not). Checkpointing works even after the WAL has failed:
// it is the escape hatch that preserves the in-memory state when the
// log's disk dies.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	return d.checkpointLocked()
}

// crcCountWriter accumulates the CRC32-C and size of everything written
// through it, so a snapshot's checksum is computed as it streams out.
type crcCountWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcCountWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// checkpointLocked writes snap-<seq>.ann atomically, repoints the
// manifest at it (keeping the previous generation as the corruption
// fallback), and deletes snapshots and WAL segments no retained
// generation needs.
func (d *Durable) checkpointLocked() error {
	fs := d.opts.FS
	seq := d.seq
	name := snapshotName(seq)
	tmp := filepath.Join(d.dir, name+".tmp")
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcCountWriter{w: bw}
	if err := d.eng.Save(cw); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		return err
	}
	if err := fs.SyncDir(d.dir); err != nil {
		return err
	}
	// Tags sidecar: the tag store as of the same watermark, written with
	// the same atomic tmp+rename discipline, referenced (with CRC) from
	// the generation. Skipped entirely when no vector carries tags.
	var tagsRef generation
	if snap := d.eng.TagsSnapshot(); len(snap) > 0 {
		tb, err := json.Marshal(tagsFile{Tags: snap})
		if err != nil {
			return err
		}
		tname := tagsName(seq)
		ttmp := filepath.Join(d.dir, tname+".tmp")
		tf, err := fs.OpenFile(ttmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := tf.Write(tb); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Sync(); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		if err := fs.Rename(ttmp, filepath.Join(d.dir, tname)); err != nil {
			return err
		}
		if err := fs.SyncDir(d.dir); err != nil {
			return err
		}
		tagsRef = generation{Tags: tname, TagsCRC: crc32.Checksum(tb, crcTable), TagsBytes: int64(len(tb))}
	}
	// Lexical-document sidecar: raw text + vector copy per document,
	// same atomic discipline. The inverted index itself is not
	// serialized — loading re-tokenizes, which the deterministic
	// tokenizer guarantees rebuilds it exactly.
	var textRef generation
	if snap := d.eng.TextsSnapshot(); len(snap) > 0 {
		xb, err := json.Marshal(textsFile{Docs: snap})
		if err != nil {
			return err
		}
		xname := textsName(seq)
		xtmp := filepath.Join(d.dir, xname+".tmp")
		xf, err := fs.OpenFile(xtmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := xf.Write(xb); err != nil {
			xf.Close()
			return err
		}
		if err := xf.Sync(); err != nil {
			xf.Close()
			return err
		}
		if err := xf.Close(); err != nil {
			return err
		}
		if err := fs.Rename(xtmp, filepath.Join(d.dir, xname)); err != nil {
			return err
		}
		if err := fs.SyncDir(d.dir); err != nil {
			return err
		}
		textRef = generation{Text: xname, TextCRC: crc32.Checksum(xb, crcTable), TextBytes: int64(len(xb))}
	}
	tombs := d.eng.TombstoneIDs()
	sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	gens := append([]generation{{
		Snapshot:   name,
		Watermark:  seq,
		CRC:        cw.crc,
		Bytes:      cw.n,
		Tombstones: tombs,
		Inserted:   d.eng.Inserted(),
		Tags:       tagsRef.Tags,
		TagsCRC:    tagsRef.TagsCRC,
		TagsBytes:  tagsRef.TagsBytes,
		Text:       textRef.Text,
		TextCRC:    textRef.TextCRC,
		TextBytes:  textRef.TextBytes,
	}}, d.gens...)
	if len(gens) > maxGenerations {
		gens = gens[:maxGenerations]
	}
	// Degenerate double-checkpoint at the same watermark: the new image
	// replaced the old file of the same name, so retaining both entries
	// would point twice at one file.
	if len(gens) == 2 && gens[1].Snapshot == name {
		gens = gens[:1]
	}
	if err := writeManifest(fs, d.dir, manifest{Generations: gens}); err != nil {
		return err
	}
	d.gens = gens
	// The manifest now points at the new snapshot; snapshots outside the
	// retained generations and WAL segments below the oldest retained
	// watermark are garbage. (Quarantined *.corrupt files are kept for
	// the operator.)
	keep := make(map[string]bool, 3*len(gens))
	for _, g := range gens {
		keep[g.Snapshot] = true
		if g.Tags != "" {
			keep[g.Tags] = true
		}
		if g.Text != "" {
			keep[g.Text] = true
		}
	}
	if snaps, err := fsx.Glob(fs, filepath.Join(d.dir, "snap-*.ann")); err == nil {
		for _, s := range snaps {
			if !keep[filepath.Base(s)] {
				fs.Remove(s)
			}
		}
	}
	if sidecars, err := fsx.Glob(fs, filepath.Join(d.dir, "tags-*.json")); err == nil {
		for _, s := range sidecars {
			if !keep[filepath.Base(s)] {
				fs.Remove(s)
			}
		}
	}
	if sidecars, err := fsx.Glob(fs, filepath.Join(d.dir, "text-*.json")); err == nil {
		for _, s := range sidecars {
			if !keep[filepath.Base(s)] {
				fs.Remove(s)
			}
		}
	}
	if d.wal != nil {
		if err := d.wal.truncateThrough(gens[len(gens)-1].Watermark); err != nil {
			return err
		}
	}
	d.stats.Snapshots.Add(1)
	d.opts.Logf("store: checkpoint %s (watermark %d, crc32c %08x, %d retained generations)", name, seq, cw.crc, len(gens))
	return nil
}

// Close stops the compactor, syncs the WAL, and releases files. It does
// not checkpoint; the next Open replays the WAL tail.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.stopCompactor()
	return d.wal.close()
}
