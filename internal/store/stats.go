package store

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Stats aggregates the store's durability counters. Counters are
// atomics; the fsync latency reservoir is summarized on scrape.
type Stats struct {
	Upserts      atomic.Int64 // mutations applied through Upsert
	Deletes      atomic.Int64 // mutations applied through Delete
	WALAppends   atomic.Int64 // records appended to the WAL
	WALBytes     atomic.Int64 // bytes appended (frame + payload)
	WALFsyncs    atomic.Int64 // fsync calls (group commit batches)
	WALRotations atomic.Int64 // segment rotations
	WALTruncated atomic.Int64 // segments deleted by checkpoint truncation
	WALFailures  atomic.Int64 // I/O errors that poisoned the WAL writer
	Replayed     atomic.Int64 // records replayed at the last Open
	Snapshots    atomic.Int64 // checkpoints written
	Compactions  atomic.Int64 // partition rebuilds swapped in
	Folded       atomic.Int64 // tombstones folded out by compaction
	CaughtUp     atomic.Int64 // sidelog inserts re-applied during swaps
	TmpSwept     atomic.Int64 // stale *.tmp files removed at Open
	Quarantined  atomic.Int64 // corrupt snapshots renamed *.corrupt at Open
	Fallbacks    atomic.Int64 // Opens that recovered from a previous generation

	fsyncUS metrics.Reservoir
}

// Snapshot is the JSON shape the gateway's /varz embeds as "ingest".
type Snapshot struct {
	Upserts      int64 `json:"upserts"`
	Deletes      int64 `json:"deletes"`
	WALAppends   int64 `json:"wal_appends"`
	WALBytes     int64 `json:"wal_bytes"`
	WALFsyncs    int64 `json:"wal_fsyncs"`
	WALRotations int64 `json:"wal_rotations"`
	WALTruncated int64 `json:"wal_truncated"`
	Replayed     int64 `json:"replayed"`
	Snapshots    int64 `json:"snapshots"`
	Compactions  int64 `json:"compactions"`
	Folded       int64 `json:"folded_tombstones"`
	CaughtUp     int64 `json:"sidelog_caught_up"`

	// Storage-failure state: once WALFailed flips true the write path is
	// permanently poisoned (restart to recover) and the gateway's
	// circuit breaker rejects mutations.
	WALFailed     bool   `json:"wal_failed"`
	WALFailReason string `json:"wal_fail_reason,omitempty"`
	WALFailures   int64  `json:"wal_failures"`
	TmpSwept      int64  `json:"tmp_swept"`
	Quarantined   int64  `json:"snapshots_quarantined"`
	Fallbacks     int64  `json:"snapshot_fallbacks"`

	LastSeq      uint64 `json:"last_seq"`     // newest appended record
	Watermark    uint64 `json:"watermark"`    // covered by the newest snapshot
	WALSegments  int    `json:"wal_segments"` // live segment files
	WALDiskBytes int64  `json:"wal_disk_bytes"`

	// Engine-side ingestion state: live inserts since construction and
	// outstanding tombstones awaiting compaction.
	EngineInserted   int64 `json:"engine_inserted"`
	EngineTombstones int   `json:"engine_tombstones"`
	EnginePoints     int   `json:"engine_points"`

	FsyncUS metrics.Summary `json:"fsync_us"`
}

// Stats captures the store's counters plus the engine's ingestion
// state.
func (d *Durable) Stats() Snapshot {
	d.mu.Lock()
	lastSeq := d.seq
	var watermark uint64
	if len(d.gens) > 0 {
		watermark = d.gens[0].Watermark
	}
	d.mu.Unlock()
	disk, nseg := d.wal.diskBytes()
	failed := d.Failed()
	s := &d.stats
	snap := Snapshot{
		Upserts:      s.Upserts.Load(),
		Deletes:      s.Deletes.Load(),
		WALAppends:   s.WALAppends.Load(),
		WALBytes:     s.WALBytes.Load(),
		WALFsyncs:    s.WALFsyncs.Load(),
		WALRotations: s.WALRotations.Load(),
		WALTruncated: s.WALTruncated.Load(),
		Replayed:     s.Replayed.Load(),
		Snapshots:    s.Snapshots.Load(),
		Compactions:  s.Compactions.Load(),
		Folded:       s.Folded.Load(),
		CaughtUp:     s.CaughtUp.Load(),

		WALFailed:   failed != nil,
		WALFailures: s.WALFailures.Load(),
		TmpSwept:    s.TmpSwept.Load(),
		Quarantined: s.Quarantined.Load(),
		Fallbacks:   s.Fallbacks.Load(),

		LastSeq:      lastSeq,
		Watermark:    watermark,
		WALSegments:  nseg,
		WALDiskBytes: disk,

		EngineInserted:   d.eng.Inserted(),
		EngineTombstones: d.eng.Tombstones(),
		EnginePoints:     d.eng.Len(),

		FsyncUS: s.fsyncUS.Summarize(),
	}
	if failed != nil {
		snap.WALFailReason = failed.Error()
	}
	return snap
}
