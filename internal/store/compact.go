package store

import (
	"fmt"
	"time"

	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/vec"
)

// Background compaction. Deletes are tombstones: the engine filters
// them out of results and over-fetches to compensate, so a partition
// that has absorbed heavy delete churn wastes memory and search effort
// on dead rows. Past Options.CompactRatio the compactor rebuilds the
// partition's HNSW graph offline from its live rows only, catches up
// inserts that raced the rebuild from a sidelog, swaps the new graph
// into the engine atomically (searches never block and never see a
// half-swapped state), and checkpoints so the shrunken state is also
// what recovery loads.

// startCompactor launches the scan loop when auto-compaction is on.
func (d *Durable) startCompactor() {
	if d.opts.CompactRatio < 0 {
		return
	}
	d.stopCompact = make(chan struct{})
	d.compactDone = make(chan struct{})
	go func() {
		defer close(d.compactDone)
		t := time.NewTicker(d.opts.CompactInterval)
		defer t.Stop()
		for {
			select {
			case <-d.stopCompact:
				return
			case <-t.C:
				if p := d.pickPartition(); p >= 0 {
					if err := d.CompactPartition(p); err != nil {
						d.opts.Logf("store: compaction of partition %d failed: %v", p, err)
					}
				}
			}
		}
	}()
}

func (d *Durable) stopCompactor() {
	if d.stopCompact != nil {
		close(d.stopCompact)
		<-d.compactDone
		d.stopCompact = nil
	}
}

// pickPartition returns the partition with the worst tombstone/live
// ratio past the threshold, or -1.
func (d *Durable) pickPartition() int {
	// A poisoned WAL means the storage stack is suspect; background
	// rewrites of the manifest and snapshots would only churn a failing
	// disk. Explicit CompactPartition calls still work.
	if d.Failed() != nil {
		return -1
	}
	dead := make(map[int64]struct{})
	for _, id := range d.eng.TombstoneIDs() {
		dead[id] = struct{}{}
	}
	if len(dead) == 0 {
		return -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.compacting != -1 {
		return -1
	}
	best, bestRatio := -1, d.opts.CompactRatio
	for p := 0; p < d.eng.Partitions(); p++ {
		g, ok := d.eng.PartitionGraph(p)
		if !ok {
			continue
		}
		ds := g.Data() // no mutators run while d.mu is held
		n, nd := ds.Len(), 0
		for i := 0; i < n; i++ {
			if _, gone := dead[ds.ID(i)]; gone {
				nd++
			}
		}
		if nd == 0 {
			continue
		}
		ratio := float64(nd) / float64(max(1, n-nd))
		if ratio >= bestRatio {
			best, bestRatio = p, ratio
		}
	}
	return best
}

// CompactPartition rebuilds partition p without its tombstoned rows and
// swaps the result into the live engine. Searches continue against the
// old graph until the swap lands; inserts routed to p during the
// rebuild are recorded in a sidelog and re-applied to the new graph
// before it goes live, so nothing is lost.
func (d *Durable) CompactPartition(p int) error {
	// Phase 1 (under mu): snapshot the partition's live rows and mark
	// it compacting so concurrent upserts start feeding the sidelog.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errClosed
	}
	if d.compacting != -1 {
		d.mu.Unlock()
		return fmt.Errorf("store: partition %d is already compacting", d.compacting)
	}
	g, ok := d.eng.PartitionGraph(p)
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("store: partition %d has no HNSW graph", p)
	}
	ds := g.Data()
	live := vec.NewDataset(ds.Dim, ds.Len())
	var folded []int64
	for i := 0; i < ds.Len(); i++ {
		if id := ds.ID(i); d.eng.Deleted(id) {
			folded = append(folded, id)
		} else {
			live.Append(ds.At(i), id)
		}
	}
	cfg := g.Config()
	d.compacting = p
	d.sidelog = nil
	d.mu.Unlock()

	abort := func(err error) error {
		d.mu.Lock()
		d.compacting = -1
		d.sidelog = nil
		d.mu.Unlock()
		return err
	}

	// Phase 2 (offline): rebuild from live rows only. Mutations and
	// searches proceed against the old graph meanwhile.
	t0 := time.Now()
	ng, _, err := hnsw.Build(live, cfg, d.opts.Threads)
	if err != nil {
		return abort(err)
	}

	// Phase 3 (under mu): catch up sidelogged inserts, swap, clear the
	// folded tombstones, and checkpoint so recovery sees the compacted
	// state and the WAL can shed covered segments.
	d.mu.Lock()
	if d.closed {
		d.compacting = -1
		d.sidelog = nil
		d.mu.Unlock()
		return errClosed
	}
	for _, s := range d.sidelog {
		if _, err := ng.AddAtLevel(s.v, s.id, s.level); err != nil {
			d.compacting = -1
			d.sidelog = nil
			d.mu.Unlock()
			return err
		}
	}
	caught := len(d.sidelog)
	if err := d.eng.SwapPartition(p, index.WrapHNSW(ng), folded); err != nil {
		d.compacting = -1
		d.sidelog = nil
		d.mu.Unlock()
		return err
	}
	d.compacting = -1
	d.sidelog = nil
	d.stats.Compactions.Add(1)
	d.stats.Folded.Add(int64(len(folded)))
	d.stats.CaughtUp.Add(int64(caught))
	err = d.checkpointLocked()
	d.mu.Unlock()
	d.opts.Logf("store: compacted partition %d in %v: folded %d tombstones, caught up %d inserts, %d live rows",
		p, time.Since(t0).Round(time.Millisecond), len(folded), caught, live.Len()+caught)
	return err
}
