package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTagsCrashRecoveryWAL kills the process with tags living only in
// the WAL tail: no checkpoint after the tagged upserts. Reopen must
// replay them into the tag store.
func TestTagsCrashRecoveryWAL(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 3)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const nTagged, nPlain = 50, 20
	for i := 0; i < nTagged; i++ {
		id := int64(200000 + i)
		tags := map[string]string{"tenant": fmt.Sprintf("t%d", i%3), "idx": fmt.Sprintf("%d", i)}
		if err := d.UpsertTagged(randVec(rng, 8), id, tags); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nPlain; i++ {
		if err := d.Upsert(randVec(rng, 8), int64(300000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// A tagged upsert with nil tags must clear on replay too.
	if err := d.UpsertTagged(randVec(rng, 8), 200000, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // crash: no checkpoint, WAL only
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	e2 := d2.Engine()
	for i := 1; i < nTagged; i++ {
		id := int64(200000 + i)
		got := e2.Tags(id)
		if got["tenant"] != fmt.Sprintf("t%d", i%3) || got["idx"] != fmt.Sprintf("%d", i) {
			t.Fatalf("id %d tags after WAL replay = %v", id, got)
		}
	}
	if got := e2.Tags(200000); got != nil {
		t.Fatalf("cleared id 200000 still has tags %v after replay", got)
	}
	if got := e2.Tags(300000); got != nil {
		t.Fatalf("untagged id 300000 has tags %v", got)
	}
}

// TestTagsCrashRecoverySnapshot checkpoints (folding tags into the
// sidecar and truncating their WAL records), appends a small tagged
// tail, crashes, and reopens: tags must come back from sidecar + tail.
func TestTagsCrashRecoverySnapshot(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 5)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		if err := d.UpsertTagged(randVec(rng, 8), int64(400000+i), map[string]string{"gen": "pre"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The sidecar must exist and be referenced by the manifest.
	gens, err := Manifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	sidecars, _ := filepath.Glob(filepath.Join(dir, "tags-*.json"))
	if len(sidecars) == 0 {
		t.Fatal("checkpoint wrote no tags sidecar")
	}
	_ = gens
	// Tail after the checkpoint: new tagged ids plus a rewrite of an old
	// one — replay must override the sidecar's value.
	for i := 0; i < 10; i++ {
		if err := d.UpsertTagged(randVec(rng, 8), int64(500000+i), map[string]string{"gen": "post"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.UpsertTagged(randVec(rng, 8), 400000, map[string]string{"gen": "rewritten"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	e2 := d2.Engine()
	for i := 1; i < 40; i++ {
		if got := e2.Tags(int64(400000 + i)); got["gen"] != "pre" {
			t.Fatalf("id %d tags = %v, want gen=pre from sidecar", 400000+i, got)
		}
	}
	for i := 0; i < 10; i++ {
		if got := e2.Tags(int64(500000 + i)); got["gen"] != "post" {
			t.Fatalf("id %d tags = %v, want gen=post from WAL tail", 500000+i, got)
		}
	}
	if got := e2.Tags(400000); got["gen"] != "rewritten" {
		t.Fatalf("id 400000 tags = %v, want replayed rewrite", got)
	}
}

// TestTagsSidecarCorruptionFallsBack flips a byte in the newest
// generation's tags sidecar: Open must quarantine that generation and
// recover from the previous one plus a longer WAL replay.
func TestTagsSidecarCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 9)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		if err := d.UpsertTagged(randVec(rng, 8), int64(600000+i), map[string]string{"k": "v"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil { // generation 2: snapshot + sidecar
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	sidecars, _ := filepath.Glob(filepath.Join(dir, "tags-*.json"))
	if len(sidecars) != 1 {
		t.Fatalf("expected 1 sidecar, found %v", sidecars)
	}
	b, err := os.ReadFile(sidecars[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(sidecars[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined %d generations, want 1", got)
	}
	// Fallback generation (Create's initial snapshot) has no tags, so
	// everything must have been rebuilt from the full WAL replay.
	e2 := d2.Engine()
	for i := 0; i < 25; i++ {
		if got := e2.Tags(int64(600000 + i)); got["k"] != "v" {
			t.Fatalf("id %d tags = %v after fallback recovery", 600000+i, got)
		}
	}
	// The corrupt sidecar was quarantined, not deleted.
	q, _ := filepath.Glob(filepath.Join(dir, "tags-*"+corruptSuffix))
	if len(q) != 1 {
		all, _ := os.ReadDir(dir)
		var names []string
		for _, f := range all {
			names = append(names, f.Name())
		}
		t.Fatalf("no quarantined sidecar; dir: %s", strings.Join(names, ", "))
	}
}

// TestTaggedRecordRoundTrip pins the tagged WAL record encoding.
func TestTaggedRecordRoundTrip(t *testing.T) {
	r := Record{Seq: 9, Type: RecordUpsertTagged, Part: 3, Level: 2, ID: -5,
		Vec:  []float32{1.5, -2.25},
		Tags: map[string]string{"z": "last", "a": "first", "empty": ""}}
	buf := encodeRecord(r)
	got, err := decodePayload(buf[8:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != r.Seq || got.Type != r.Type || got.Part != r.Part || got.Level != r.Level || got.ID != r.ID {
		t.Fatalf("header round-trip: %+v", got)
	}
	if len(got.Vec) != 2 || got.Vec[0] != 1.5 || got.Vec[1] != -2.25 {
		t.Fatalf("vec round-trip: %v", got.Vec)
	}
	if len(got.Tags) != 3 || got.Tags["z"] != "last" || got.Tags["a"] != "first" || got.Tags["empty"] != "" {
		t.Fatalf("tags round-trip: %v", got.Tags)
	}
	// Out-of-order keys in a hand-built block are rejected.
	bad := encodeRecord(Record{Seq: 1, Type: RecordUpsertTagged, Vec: nil,
		Tags: map[string]string{"b": "1", "a": "2"}})
	// swap the two pairs' bytes: locate the tag block (offset 29 into payload)
	p := append([]byte(nil), bad[8:]...)
	blk := p[29:]
	// block: count(2) a-pair(2+1+2+1=6) b-pair(6)
	tmp := append([]byte(nil), blk[2:8]...)
	copy(blk[2:8], blk[8:14])
	copy(blk[8:14], tmp)
	if _, err := decodePayload(p); err == nil {
		t.Fatal("out-of-order tag keys decoded without error")
	}
}
