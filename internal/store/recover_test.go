package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fsx"
	"repro/internal/topk"
	"repro/internal/vec"
)

// smallEngine builds a 4-partition engine over clustered data.
func smallEngine(t testing.TB, n int, seed int64) (*core.Engine, *vec.Dataset) {
	t.Helper()
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: n, Dim: 8, Clusters: 4, Outliers: n / 100, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4)
	e, err := core.NewEngine(g.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, g.Data
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// queryResults answers qs against e and returns exact (ID, Dist) rows.
func queryResults(t testing.TB, e *core.Engine, qs [][]float32, k int) [][]topk.Result {
	t.Helper()
	out := make([][]topk.Result, len(qs))
	for i, q := range qs {
		rs, err := e.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rs
	}
	return out
}

func sameResults(a, b [][]topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].ID != b[i][j].ID || a[i][j].Dist != b[i][j].Dist {
				return false
			}
		}
	}
	return true
}

// TestCrashRecoveryExact is the acceptance test: N upserts + M deletes,
// process dies without a snapshot, reopen, and the recovered engine
// answers a fixed query set identically to the never-crashed one.
func TestCrashRecoveryExact(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 1200, 7)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	const nUp, nDel = 120, 60
	for i := 0; i < nUp; i++ {
		if err := d.Upsert(randVec(rng, 8), int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nDel; i++ {
		// delete a mix of original rows and fresh inserts
		id := int64(rng.Intn(1200))
		if i%3 == 0 {
			id = int64(100000 + rng.Intn(nUp))
		}
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	qs := make([][]float32, 20)
	for i := range qs {
		qs[i] = randVec(rng, 8)
	}
	want := queryResults(t, d.Engine(), qs, 10)

	// "Kill" the process: no checkpoint is written, the WAL is all that
	// survives. Close only releases file handles (SyncEvery=1 made every
	// record durable already).
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().Replayed; got != nUp+nDel {
		t.Errorf("replayed %d records, want %d", got, nUp+nDel)
	}
	got := queryResults(t, d2.Engine(), qs, 10)
	if !sameResults(want, got) {
		t.Fatal("recovered search results differ from the never-crashed engine")
	}
	if d2.Engine().Tombstones() != e.Tombstones() {
		t.Errorf("tombstones %d != %d", d2.Engine().Tombstones(), e.Tombstones())
	}
}

// TestCrashRecoveryTornTail kills the process mid-append: the final WAL
// record is torn and must be dropped, recovering exactly the state as
// of the last whole record.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 11)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		if err := d.Upsert(randVec(rng, 8), int64(200000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := d.Delete(int64(rng.Intn(800))); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([][]float32, 16)
	for i := range qs {
		qs[i] = randVec(rng, 8)
	}
	// Reference state: everything up to (not including) the final op.
	want := queryResults(t, d.Engine(), qs, 10)
	if err := d.Upsert(randVec(rng, 8), 999999); err != nil { // this record will be torn
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-frame.
	segs, err := listSegments(fsx.OS{}, filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %d", err, len(segs))
	}
	last := segs[len(segs)-1].path
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().Replayed; got != 50 {
		t.Errorf("replayed %d records, want 50 (torn 51st dropped)", got)
	}
	got := queryResults(t, d2.Engine(), qs, 10)
	if !sameResults(want, got) {
		t.Fatal("torn-tail recovery differs from the state at the last whole record")
	}
	// The store keeps working after repair: the torn sequence number is
	// reused by the next mutation.
	if err := d2.Upsert(randVec(rng, 8), 424242); err != nil {
		t.Fatal(err)
	}
	if d2.Stats().LastSeq != 51 {
		t.Errorf("post-repair seq %d, want 51", d2.Stats().LastSeq)
	}
}

// TestRecoveryAfterCheckpoint verifies the watermark path: records
// folded into a snapshot are not replayed again, and the WAL sheds
// covered segments.
func TestRecoveryAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 13)
	d, err := Create(dir, e, Options{SyncEvery: 1, SegmentBytes: 2048, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		if err := d.Upsert(randVec(rng, 8), int64(300000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes BEFORE the checkpoint: their WAL records are truncated
	// with it, so the tombstones must survive via the snapshot manifest.
	for i := 0; i < 15; i++ {
		if err := d.Delete(int64(rng.Intn(800))); err != nil {
			t.Fatal(err)
		}
	}
	preTombs := d.Engine().Tombstones()
	preInserted := d.Engine().Inserted()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two-generation retention: the first checkpoint keeps the WAL back
	// to the previous generation's watermark (the empty initial
	// snapshot), so nothing is shed yet — that tail is what a corrupt-
	// snapshot fallback would replay. A second checkpoint retires the
	// initial generation and sheds the segments it was holding.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(fsx.OS{}, filepath.Join(dir, "wal"))
	if len(segsAfter) != 1 {
		t.Errorf("second checkpoint left %d WAL segments, want 1", len(segsAfter))
	}
	for i := 0; i < 10; i++ {
		if err := d.Upsert(randVec(rng, 8), int64(400000+i)); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([][]float32, 12)
	for i := range qs {
		qs[i] = randVec(rng, 8)
	}
	want := queryResults(t, d.Engine(), qs, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().Replayed; got != 10 {
		t.Errorf("replayed %d records, want only the 10 past the watermark", got)
	}
	if got := d2.Engine().Tombstones(); got != preTombs {
		t.Errorf("tombstones did not survive the checkpoint: %d, want %d", got, preTombs)
	}
	if got := d2.Engine().Inserted(); got != preInserted+10 {
		t.Errorf("inserted counter %d after recovery, want %d", got, preInserted+10)
	}
	if got := queryResults(t, d2.Engine(), qs, 10); !sameResults(want, got) {
		t.Fatal("post-checkpoint recovery differs")
	}
}

func TestOpenOrCreate(t *testing.T) {
	dir := t.TempDir()
	builds := 0
	build := func() (*core.Engine, error) {
		builds++
		e, _ := smallEngine(t, 600, 3)
		return e, nil
	}
	d, err := OpenOrCreate(dir, build, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("first OpenOrCreate built %d times", builds)
	}
	if err := d.Upsert(make([]float32, 8), 777); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenOrCreate(dir, build, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if builds != 1 {
		t.Errorf("second OpenOrCreate rebuilt (%d builds); should have recovered", builds)
	}
	if d2.Engine().Inserted() != 1 {
		t.Errorf("recovered inserted=%d, want 1", d2.Engine().Inserted())
	}
	// Create on an initialised dir must refuse.
	e3, _ := smallEngine(t, 600, 4)
	if _, err := Create(dir, e3, Options{}); err == nil {
		t.Error("Create over an existing store: want error")
	}
}
