package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/lexical"
)

// Crash recovery of the lexical subsystem: document text rides
// RecordUpsertText WAL records and the text-<seq>.json checkpoint
// sidecar; recovery must rebuild the BM25 inverted index exactly — the
// canonical postings dump and fused hybrid rankings (IDs, order,
// scores) all byte-identical to the pre-crash state.

// fixedText derives a deterministic document from an integer: a few
// shared terms (real BM25 competition) plus a unique token per id.
func fixedText(i int) string {
	return fmt.Sprintf("shared alpha beta%d group%d unique%d", i%3, i%4, i)
}

// hybridQueries is the fixed query set every equality check uses.
func hybridQueries() ([][]float32, []string) {
	qs := make([][]float32, 4)
	for i := range qs {
		qs[i] = fixedVec(2000+i, 8)
	}
	texts := []string{"shared", "alpha group1", "unique5 shared", "beta0 beta1 unique12"}
	return qs, texts
}

// hybridResults runs the fixed hybrid queries in both fusion modes.
func hybridResults(t testing.TB, e *core.Engine) [][]core.HybridResult {
	t.Helper()
	qs, texts := hybridQueries()
	var out [][]core.HybridResult
	for i := range qs {
		for _, mode := range []string{core.FusionRRF, core.FusionWeighted} {
			rs, err := e.SearchHybrid(qs[i], texts[i], 5, core.HybridOptions{Fusion: mode})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rs)
		}
	}
	return out
}

// postingsDump returns the canonical live-postings dump.
func postingsDump(t testing.TB, e *core.Engine) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := e.LexicalDump(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTextRecordRoundTrip pins the text WAL record encoding: byte-exact
// re-encode, strict length validation.
func TestTextRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Seq: 7, Type: RecordUpsertText, Part: 1, Level: 2, ID: 42,
			Vec: []float32{0.5, -1.25, 3}, Text: "Hello, BM25 world!"},
		{Seq: 8, Type: RecordUpsertText, ID: -9, Vec: nil, Text: ""},
		{Seq: 9, Type: RecordUpsertText, ID: 1, Vec: []float32{1}, Text: "ünïcode Ω 帽子"},
	}
	for _, r := range cases {
		buf := encodeRecord(r)
		got, err := decodePayload(buf[8:])
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Seq != r.Seq || got.Type != r.Type || got.Part != r.Part ||
			got.Level != r.Level || got.ID != r.ID || got.Text != r.Text {
			t.Fatalf("round-trip %+v -> %+v", r, got)
		}
		if len(got.Vec) != len(r.Vec) {
			t.Fatalf("vec round-trip: %v -> %v", r.Vec, got.Vec)
		}
		if !bytes.Equal(encodeRecord(got), buf) {
			t.Fatalf("re-encode not byte-exact for %+v", r)
		}
	}
	// A truncated text block must be rejected, not silently shortened.
	r := cases[0]
	buf := encodeRecord(r)
	if _, err := decodePayload(buf[8 : len(buf)-3]); err == nil {
		t.Fatal("truncated text payload decoded without error")
	}
}

func TestUpsertTextRejectsOversize(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 300, 3)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	huge := strings.Repeat("x", MaxTextBytes+1)
	if err := d.UpsertText(fixedVec(1, 8), 1, huge); err == nil {
		t.Fatal("oversized text accepted")
	}
}

// TestTextCrashRecoveryWAL kills the process with documents living only
// in the WAL tail: replay must rebuild text, postings, and hybrid
// rankings exactly.
func TestTextCrashRecoveryWAL(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 3)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		if err := d.UpsertText(randVec(rng, 8), int64(700000+i), fixedText(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites leave stale postings in the live index; the rebuilt
	// index has none — the canonical dump must agree anyway.
	if err := d.UpsertText(randVec(rng, 8), 700000, "rewritten gamma"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(700001); err != nil {
		t.Fatal(err)
	}
	wantHy := hybridResults(t, d.Engine())
	wantDump := postingsDump(t, d.Engine())
	if err := d.Close(); err != nil { // crash: no checkpoint, WAL only
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	e2 := d2.Engine()
	if got, _ := e2.Text(700000); got != "rewritten gamma" {
		t.Fatalf("overwritten doc text = %q after replay", got)
	}
	for i := 2; i < 40; i++ {
		if got, ok := e2.Text(int64(700000 + i)); !ok || got != fixedText(i) {
			t.Fatalf("doc %d text = %q, %v after replay", i, got, ok)
		}
	}
	if got := hybridResults(t, e2); !reflect.DeepEqual(got, wantHy) {
		t.Fatal("hybrid rankings diverge after WAL replay")
	}
	if got := postingsDump(t, e2); !bytes.Equal(got, wantDump) {
		t.Fatalf("postings dump diverges after WAL replay:\n%s\n---\n%s", got, wantDump)
	}
}

// TestTextCrashRecoverySnapshot checkpoints (folding documents into the
// text sidecar, truncating their WAL records), appends a tail, crashes:
// documents must come back from sidecar + tail with identical rankings.
func TestTextCrashRecoverySnapshot(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 5)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		if err := d.UpsertText(randVec(rng, 8), int64(700000+i), fixedText(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if sidecars, _ := filepath.Glob(filepath.Join(dir, "text-*.json")); len(sidecars) == 0 {
		t.Fatal("checkpoint wrote no text sidecar")
	}
	for i := 30; i < 38; i++ {
		if err := d.UpsertText(randVec(rng, 8), int64(700000+i), fixedText(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.UpsertText(randVec(rng, 8), 700003, "rewritten after checkpoint"); err != nil {
		t.Fatal(err)
	}
	wantHy := hybridResults(t, d.Engine())
	wantDump := postingsDump(t, d.Engine())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	e2 := d2.Engine()
	if got, _ := e2.Text(700003); got != "rewritten after checkpoint" {
		t.Fatalf("tail rewrite lost: %q", got)
	}
	if got := e2.TextCount(); got != 38 {
		t.Fatalf("TextCount = %d, want 38", got)
	}
	if got := hybridResults(t, e2); !reflect.DeepEqual(got, wantHy) {
		t.Fatal("hybrid rankings diverge after sidecar + tail recovery")
	}
	if got := postingsDump(t, e2); !bytes.Equal(got, wantDump) {
		t.Fatal("postings dump diverges after sidecar + tail recovery")
	}
}

// TestTextSidecarCorruptionFallsBack flips a byte in the newest
// generation's text sidecar: Open must quarantine the whole generation
// and rebuild the index identically from the previous generation plus a
// full WAL replay.
func TestTextSidecarCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 800, 9)
	d, err := Create(dir, e, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		if err := d.UpsertText(randVec(rng, 8), int64(700000+i), fixedText(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantHy := hybridResults(t, d.Engine())
	wantDump := postingsDump(t, d.Engine())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	sidecars, _ := filepath.Glob(filepath.Join(dir, "text-*.json"))
	if len(sidecars) != 1 {
		t.Fatalf("expected 1 text sidecar, found %v", sidecars)
	}
	b, err := os.ReadFile(sidecars[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(sidecars[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined %d generations, want 1", got)
	}
	e2 := d2.Engine()
	if got := hybridResults(t, e2); !reflect.DeepEqual(got, wantHy) {
		t.Fatal("hybrid rankings diverge after quarantine fallback")
	}
	if got := postingsDump(t, e2); !bytes.Equal(got, wantDump) {
		t.Fatal("postings dump diverges after quarantine fallback")
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "text-*"+corruptSuffix)); len(q) != 1 {
		t.Fatalf("corrupt text sidecar not quarantined: %v", q)
	}
}

// --- Text crash-point sweep ----------------------------------------------
//
// textChaosRun is the lexical twin of chaosRun: a fixed text workload
// (upserts with text, a delete, a checkpoint that writes the text
// sidecar, more upserts including an overwrite) against a filesystem
// that dies at a scripted operation. Recovery with a clean FS must
// restore identical BM25 state: same fused hybrid top-k in the same
// order with the same scores, and a byte-identical canonical postings
// dump — with at most the single unacknowledged in-flight record as
// slack.

func textChaosRun(t *testing.T, base []byte, rule *fsx.Rule) chaosOutcome {
	t.Helper()
	dir := t.TempDir()

	preEng := loadEngineBytes(t, base)
	d0, err := Create(dir, preEng, chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d0.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d0.Close(); err != nil {
		t.Fatal(err)
	}
	ackSeq := uint64(3)

	var rules []fsx.Rule
	if rule != nil {
		rules = append(rules, *rule)
	}
	fs := fsx.NewFaulty(fsx.OS{}, 1, rules...)
	out := chaosOutcome{}
	d, err := Open(dir, chaosOpts(fs))
	if err != nil {
		out.openFailed, out.crashed = true, true
	} else {
		preEng = d.Engine()
		step := func(fn func() error) bool {
			if out.crashed {
				return false
			}
			if err := fn(); err != nil {
				out.crashed = true
				return false
			}
			return true
		}
		mut := func(fn func() error) {
			if step(fn) {
				ackSeq++
			}
		}
		for i := 3; i < 7; i++ {
			i := i
			mut(func() error { return d.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)) })
		}
		mut(func() error { return d.Delete(700001) })
		step(d.Checkpoint) // writes the text sidecar
		for i := 7; i < 9; i++ {
			i := i
			mut(func() error { return d.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)) })
		}
		// Overwrite: stale postings live-side, none after rebuild.
		mut(func() error { return d.UpsertText(fixedVec(42, 8), 700002, "rewritten delta") })
		d.Close()
	}

	wantHy := hybridResults(t, preEng)
	wantDump := postingsDump(t, preEng)

	d2, err := Open(dir, chaosOpts(nil))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer d2.Close()

	var extras []Record
	err = ScanWAL(dir, func(r Record) error {
		if r.Seq > ackSeq {
			extras = append(extras, r)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning recovered WAL: %v", err)
	}
	if len(extras) > 1 {
		t.Fatalf("%d unacknowledged records survived, want at most 1", len(extras))
	}
	gotHy := hybridResults(t, d2.Engine())
	gotDump := postingsDump(t, d2.Engine())
	if !reflect.DeepEqual(gotHy, wantHy) || !bytes.Equal(gotDump, wantDump) {
		// Fold the in-flight record into the oracle; then the match must
		// be exact.
		for _, r := range extras {
			switch r.Type {
			case RecordUpsertText:
				if err := preEng.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
					t.Fatalf("applying in-flight record to oracle: %v", err)
				}
				preEng.SetText(r.ID, r.Text, r.Vec)
			case RecordUpsert:
				if err := preEng.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
					t.Fatalf("applying in-flight record to oracle: %v", err)
				}
			case RecordDelete:
				preEng.Delete(r.ID)
			}
		}
		wantHy = hybridResults(t, preEng)
		wantDump = postingsDump(t, preEng)
		if !reflect.DeepEqual(gotHy, wantHy) {
			t.Fatalf("recovered hybrid rankings diverge from acked state (+%d in-flight)", len(extras))
		}
		if !bytes.Equal(gotDump, wantDump) {
			t.Fatalf("recovered postings dump diverges from acked state (+%d in-flight):\n%s\n---\n%s",
				len(extras), gotDump, wantDump)
		}
	}
	return out
}

// TestTextCrashPointSweep discovers every filesystem operation the text
// workload issues — including the text sidecar's write/sync/rename
// sites inside checkpoint — and kills the store at each one.
func TestTextCrashPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is slow; skipping under -short")
	}
	base := engineBytes(t, 300, 67)

	counter := fsx.NewFaulty(fsx.OS{}, 1)
	discover := func() map[fsx.Op]int {
		dir := t.TempDir()
		d0, err := Create(dir, loadEngineBytes(t, base), chaosOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := d0.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)); err != nil {
				t.Fatal(err)
			}
		}
		d0.Close()
		d, err := Open(dir, chaosOpts(counter))
		if err != nil {
			t.Fatal(err)
		}
		for i := 3; i < 7; i++ {
			if err := d.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Delete(700001); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 7; i < 9; i++ {
			if err := d.UpsertText(fixedVec(i, 8), int64(700000+i), fixedText(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.UpsertText(fixedVec(42, 8), 700002, "rewritten delta"); err != nil {
			t.Fatal(err)
		}
		d.Close()
		counts := map[fsx.Op]int{}
		for op := fsx.OpOpen; op <= fsx.OpSyncDir; op++ {
			counts[op] = counter.Count(op)
		}
		return counts
	}
	counts := discover()

	afterOps := map[fsx.Op]bool{fsx.OpWrite: true, fsx.OpSync: true, fsx.OpRename: true}
	sites, crashedSomewhere := 0, 0
	var names []string
	for op, n := range counts {
		if n == 0 {
			continue
		}
		names = append(names, fmt.Sprintf("%v×%d", op, n))
		for nth := 1; nth <= n; nth++ {
			variants := []bool{false}
			if afterOps[op] {
				variants = append(variants, true)
			}
			for _, after := range variants {
				rule := fsx.Rule{Op: op, Nth: nth, After: after, Crash: true}
				out := textChaosRun(t, base, &rule)
				sites++
				if out.crashed {
					crashedSomewhere++
				}
			}
		}
	}
	sort.Strings(names)
	t.Logf("text crash sweep: %d sites over ops {%s}; %d observed the crash in-workload",
		sites, strings.Join(names, " "), crashedSomewhere)
	if sites < 30 {
		t.Fatalf("only %d crash sites discovered; the workload should issue far more I/O", sites)
	}
	if crashedSomewhere == 0 {
		t.Fatal("no run observed its injected crash")
	}
}

// TestTextSidecarParamsFromOptions: Options.Lexical must configure the
// BM25 index (stopwords change tokenization) before restore and replay.
func TestTextSidecarParamsFromOptions(t *testing.T) {
	dir := t.TempDir()
	e, _ := smallEngine(t, 300, 11)
	lc := lexical.Config{Stopwords: []string{"the"}}
	opts := Options{SyncEvery: 1, CompactRatio: -1, Lexical: &lc}
	d, err := Create(dir, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.UpsertText(fixedVec(1, 8), 1, "the quick fox"); err != nil {
		t.Fatal(err)
	}
	if got := d.Engine().SearchLexical("the", 5, nil); got != nil {
		t.Fatalf("stopword scored before crash: %v", got)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.UpsertText(fixedVec(2, 8), 2, "the lazy dog"); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Engine().SearchLexical("the", 5, nil); got != nil {
		t.Fatalf("stopword scored after recovery: %v", got)
	}
	if got := d2.Engine().SearchLexical("quick fox", 5, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("sidecar-restored doc missing: %v", got)
	}
	if got := d2.Engine().SearchLexical("lazy", 5, nil); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("tail-replayed doc missing: %v", got)
	}
}
