package median

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedCopy(xs []float32) []float32 {
	s := append([]float32(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		xs := make([]float32, n)
		for i := range xs {
			xs[i] = float32(rng.NormFloat64())
		}
		want := sortedCopy(xs)
		k := rng.Intn(n)
		if got := Select(append([]float32(nil), xs...), k); got != want[k] {
			t.Fatalf("trial %d: Select(%d) = %v want %v", trial, k, got, want[k])
		}
	}
}

func TestSelectDuplicates(t *testing.T) {
	xs := []float32{2, 2, 2, 2, 2}
	if got := Select(xs, 2); got != 2 {
		t.Errorf("got %v", got)
	}
	xs = []float32{1, 3, 1, 3, 1, 3}
	want := sortedCopy(xs)
	for k := range xs {
		if got := Select(append([]float32(nil), xs...), k); got != want[k] {
			t.Errorf("k=%d got %v want %v", k, got, want[k])
		}
	}
}

func TestMedianQuick(t *testing.T) {
	err := quick.Check(func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		want := sortedCopy(xs)[(len(xs)-1)/2]
		return MedianCopy(xs) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMedianCopyLeavesInputUnchanged(t *testing.T) {
	xs := []float32{5, 1, 4, 2, 3}
	MedianCopy(xs)
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Select(nil, 0) },
		func() { Median(nil) },
		func() { WeightedMedian(nil) },
		func() { Rank(0, 0, 0, 1, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightedMedian(t *testing.T) {
	vs := []WeightedValue{{1, 1}, {10, 3}, {5, 2}}
	// sorted: 1(w1) 5(w2) 10(w3); total 6, half 3 -> cumulative 1,3 -> 5
	if got := WeightedMedian(vs); got != 5 {
		t.Errorf("got %v want 5", got)
	}
	if got := WeightedMedian([]WeightedValue{{7, 1}}); got != 7 {
		t.Errorf("single: got %v", got)
	}
}

func TestCountLE(t *testing.T) {
	if got := CountLE([]float32{1, 2, 3, 4}, 2.5); got != 2 {
		t.Errorf("got %d", got)
	}
}

func TestRankFindsGlobalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// three "ranks" of data
	parts := make([][]float32, 3)
	var all []float32
	for p := range parts {
		n := 100 + rng.Intn(100)
		parts[p] = make([]float32, n)
		for i := range parts[p] {
			parts[p][i] = float32(rng.NormFloat64() * 10)
		}
		all = append(all, parts[p]...)
	}
	want := sortedCopy(all)[(len(all)-1)/2]
	countLE := func(v float32) int64 {
		var n int64
		for _, p := range parts {
			n += CountLE(p, v)
		}
		return n
	}
	got := Rank(int64((len(all)-1)/2), int64(len(all)), -100, 100, countLE, 200)
	// got is the smallest representable value with enough mass <= it; it
	// must equal the true median element.
	if got != want {
		t.Errorf("Rank = %v want %v", got, want)
	}
}

func BenchmarkSelect10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := make([]float32, 10000)
	for i := range base {
		base[i] = rng.Float32()
	}
	buf := make([]float32, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		Select(buf, len(buf)/2)
	}
}
