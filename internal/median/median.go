// Package median provides selection algorithms: in-place quickselect with
// median-of-medians pivoting (worst-case O(n)) and the weighted-median
// combiner used by the distributed median algorithm in the VP-tree
// construction (Algorithm 2 of the paper computes split radii with a
// "distributed version of the median of medians algorithm").
package median

import "sort"

// Select returns the k-th smallest element (0-based) of xs, partially
// reordering xs in place. It panics if k is out of range.
func Select(xs []float32, k int) float32 {
	if k < 0 || k >= len(xs) {
		panic("median: k out of range")
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi, pivot(xs, lo, hi))
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

// Median returns the lower median of xs (element at index (n-1)/2 of the
// sorted order), partially reordering xs in place.
func Median(xs []float32) float32 {
	if len(xs) == 0 {
		panic("median: empty input")
	}
	return Select(xs, (len(xs)-1)/2)
}

// MedianCopy is Median on a copy, leaving xs untouched.
func MedianCopy(xs []float32) float32 {
	tmp := append([]float32(nil), xs...)
	return Median(tmp)
}

// pivot computes a median-of-medians pivot value for xs[lo..hi].
func pivot(xs []float32, lo, hi int) float32 {
	n := hi - lo + 1
	if n <= 5 {
		return medianOfFive(xs, lo, hi)
	}
	// median of the medians of groups of five, collected out of place so
	// the input is not disturbed before partitioning
	medians := make([]float32, 0, (n+4)/5)
	for i := lo; i <= hi; i += 5 {
		end := i + 4
		if end > hi {
			end = hi
		}
		medians = append(medians, medianOfFive(xs, i, end))
	}
	return Select(medians, (len(medians)-1)/2)
}

func medianOfFive(xs []float32, lo, hi int) float32 {
	tmp := make([]float32, hi-lo+1)
	copy(tmp, xs[lo:hi+1])
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	return tmp[(len(tmp)-1)/2]
}

// partition performs a three-way-safe Lomuto partition of xs[lo..hi]
// around value pv and returns the final index of one element equal to pv
// (or the closest split position).
func partition(xs []float32, lo, hi int, pv float32) int {
	// move an element equal to pv (or the first >= pv) to the end
	idx := lo
	for i := lo; i <= hi; i++ {
		if xs[i] == pv {
			idx = i
			break
		}
	}
	xs[idx], xs[hi] = xs[hi], xs[idx]
	store := lo
	for i := lo; i < hi; i++ {
		if xs[i] < xs[hi] {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[hi] = xs[hi], xs[store]
	return store
}

// WeightedMedian returns the weighted lower median of values: the
// smallest v such that the weight of {x <= v} is at least half the total.
// This is the combiner the distributed median uses: each rank contributes
// its local median weighted by its local count. The slices must have
// equal length and positive total weight.
type WeightedValue struct {
	Value  float32
	Weight int64
}

// WeightedMedian computes the weighted lower median of vs.
func WeightedMedian(vs []WeightedValue) float32 {
	if len(vs) == 0 {
		panic("median: empty weighted input")
	}
	sorted := append([]WeightedValue(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Value < sorted[j].Value })
	var total int64
	for _, v := range sorted {
		total += v.Weight
	}
	half := (total + 1) / 2
	var acc int64
	for _, v := range sorted {
		acc += v.Weight
		if acc >= half {
			return v.Value
		}
	}
	return sorted[len(sorted)-1].Value
}

// CountLE returns how many elements of xs are <= v.
func CountLE(xs []float32, v float32) int64 {
	var n int64
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return n
}

// Rank returns the k-th smallest (0-based) across many distributed value
// slices by iterative bisection on the value domain. It is exact for the
// discrete set of values present. This mirrors the master-side step of
// the distributed median: the caller supplies per-rank count callbacks.
//
// countLE(v) must return the total number of elements <= v across all
// ranks; lo/hi must bracket all values; values is the total element
// count.
func Rank(k int64, values int64, lo, hi float32, countLE func(v float32) int64, maxIter int) float32 {
	if values <= 0 || k < 0 || k >= values {
		panic("median: bad rank query")
	}
	for i := 0; i < maxIter && lo < hi; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi { // float underflow: cannot split further
			break
		}
		if countLE(mid) >= k+1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
