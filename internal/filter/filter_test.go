package filter

import (
	"strings"
	"testing"
)

func TestParseAndMatch(t *testing.T) {
	cases := []struct {
		src   string
		tags  map[string]string
		match bool
	}{
		{"", map[string]string{"a": "1"}, true},
		{"   ", nil, true},
		{"bucket=hot", map[string]string{"bucket": "hot"}, true},
		{"bucket=hot", map[string]string{"bucket": "cold"}, false},
		{"bucket=hot", nil, false},
		{"bucket in {hot,warm}", map[string]string{"bucket": "warm"}, true},
		{"bucket in {hot,warm}", map[string]string{"bucket": "cold"}, false},
		{"bucket=hot and lang=en", map[string]string{"bucket": "hot", "lang": "en"}, true},
		{"bucket=hot and lang=en", map[string]string{"bucket": "hot", "lang": "de"}, false},
		{"bucket=hot AND lang=en", map[string]string{"bucket": "hot", "lang": "en"}, true},
		{"bucket=hot && lang=en", map[string]string{"bucket": "hot", "lang": "en"}, true},
		// Contradictory equality terms match nothing.
		{"k=a and k=b", map[string]string{"k": "a"}, false},
		// Dots, dashes, colons, slashes in tokens.
		{"path=/docs/a-b and v=1.2:3", map[string]string{"path": "/docs/a-b", "v": "1.2:3"}, true},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := e.Matches(c.tags); got != c.match {
			t.Errorf("Parse(%q).Matches(%v) = %v, want %v", c.src, c.tags, got, c.match)
		}
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	e, err := Parse("  \t ")
	if err != nil || e != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", e, err)
	}
	if !e.Empty() || e.Canonical() != "" || !e.Matches(nil) {
		t.Fatalf("nil expr should be empty, canonical \"\", match-all")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"=v",
		"k=",
		"k==v",
		"k in hot",
		"k in {",
		"k in {}",
		"k in {a,}",
		"k in {a b}",
		"k=a or k=b",
		"k=a k=b",
		"k = 'quoted'",
		"k=a &",
		"k=a and",
		"and k=a",
		strings.Repeat("x", MaxLen+1),
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", src)
		}
	}
}

func TestParseLimits(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxTerms; i++ {
		if i > 0 {
			sb.WriteString(" and ")
		}
		sb.WriteString("k")
		sb.WriteString(strings.Repeat("x", i%3))
		sb.WriteString("=v")
	}
	if _, err := Parse(sb.String()); err == nil {
		t.Errorf("expected term-count limit error")
	}

	sb.Reset()
	sb.WriteString("k in {v0")
	for i := 1; i <= MaxValuesPerTerm; i++ {
		sb.WriteString(",v")
		sb.WriteString(strings.Repeat("y", 1+i%2))
	}
	sb.WriteString("}")
	if _, err := Parse(sb.String()); err == nil {
		t.Errorf("expected value-count limit error")
	}
}

func TestCanonical(t *testing.T) {
	// Same semantics, different spellings, one canonical form.
	variants := []string{
		"lang=en and bucket in {warm,hot,hot}",
		"bucket in {hot,warm} AND lang=en",
		"bucket in {warm,hot} && lang=en",
		"  bucket   in   {  warm , hot }  and  lang=en ",
	}
	want := "bucket in {hot,warm} and lang=en"
	for _, src := range variants {
		e := MustParse(src)
		if got := e.Canonical(); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", src, got, want)
		}
	}
	// Canonical round-trips through Parse.
	e := MustParse(want)
	if e.Canonical() != want {
		t.Errorf("canonical form not a fixed point: %q", e.Canonical())
	}
	// Single-value in-set collapses to equality.
	if got := MustParse("k in {v}").Canonical(); got != "k=v" {
		t.Errorf("k in {v} canonical = %q, want k=v", got)
	}
}

func TestTermsCopy(t *testing.T) {
	e := MustParse("a=1 and b in {x,y}")
	ts := e.Terms()
	if len(ts) != 2 || ts[0].Key != "a" || len(ts[1].Values) != 2 {
		t.Fatalf("Terms() = %+v", ts)
	}
	ts[1].Values[0] = "mutated"
	if e.Matches(map[string]string{"a": "1", "b": "x"}) != true {
		t.Fatalf("mutating Terms() copy leaked into expression")
	}
}

func TestNewProgrammatic(t *testing.T) {
	e := New(Term{Key: "b", Values: []string{"z", "a", "z"}}, Term{Key: "a", Values: []string{"1"}})
	if got, want := e.Canonical(), "a=1 and b in {a,z}"; got != want {
		t.Errorf("New canonical = %q, want %q", got, want)
	}
}
