package filter

import "testing"

// FuzzFilterParse asserts three invariants over arbitrary input: the
// parser never panics, any accepted expression canonicalizes to a
// fixed point (Parse(Canonical()) succeeds and yields the same
// canonical string), and Matches never panics on a canonical-form
// tag probe.
func FuzzFilterParse(f *testing.F) {
	seeds := []string{
		"",
		"bucket=hot",
		"bucket in {hot,warm}",
		"bucket=hot and lang=en",
		"a=1 && b in {x,y,z}",
		"k in {v}",
		"k==v",
		"k in {",
		"=,{}&&",
		"path=/a/b-c.d:e",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		canon := e.Canonical()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if got := e2.Canonical(); got != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q -> %q", src, canon, got)
		}
		// Matching must not panic regardless of tag contents.
		_ = e.Matches(nil)
		_ = e.Matches(map[string]string{"k": "v"})
		// A tag map built from the expression's own terms must satisfy
		// it unless two terms contradict on the same key.
		tags := map[string]string{}
		contradiction := false
		for _, term := range e.Terms() {
			if prev, ok := tags[term.Key]; ok {
				if !contains(term.Values, prev) {
					contradiction = true
				}
				continue
			}
			tags[term.Key] = term.Values[0]
		}
		if !contradiction && !e.Matches(tags) {
			t.Fatalf("expression %q rejects tags built from its own terms: %v", canon, tags)
		}
	})
}
