// Package filter implements the small metadata-filter expression
// language used by filtered search. An expression is a conjunction of
// terms over per-vector string tags:
//
//	term := key '=' value
//	      | key 'in' '{' value (',' value)* '}'
//	expr := term (('and' | '&&') term)*
//
// Keys and values are bare tokens drawn from [A-Za-z0-9_.:/-]. The
// expression compiles to a predicate over tag maps; Canonical() renders
// a deterministic normal form (terms sorted by key, values sorted and
// deduplicated) suitable for cache keys and batch grouping.
//
// A nil *Expr matches everything; handlers treat an absent/empty filter
// string as nil.
package filter

import (
	"fmt"
	"sort"
	"strings"
)

// Limits keep adversarial inputs (fuzzing, untrusted HTTP bodies) from
// building pathological expressions.
const (
	MaxLen           = 4096 // bytes of source text
	MaxTerms         = 64
	MaxValuesPerTerm = 256
)

// Term is one conjunct: the tag at Key must equal one of Values.
// Values is sorted and deduplicated; len(Values) == 1 renders as
// key=value, longer sets render as key in {a,b}.
type Term struct {
	Key    string
	Values []string
}

// Expr is a parsed filter: the conjunction of all Terms. The zero
// value (no terms) matches everything, as does a nil *Expr.
type Expr struct {
	terms []Term
	canon string
}

// Parse parses a filter expression. An empty (or all-whitespace)
// string yields (nil, nil): no filter.
func Parse(s string) (*Expr, error) {
	if len(s) > MaxLen {
		return nil, fmt.Errorf("filter: expression longer than %d bytes", MaxLen)
	}
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, nil
	}
	p := parser{toks: toks}
	terms, err := p.expr()
	if err != nil {
		return nil, err
	}
	return newExpr(terms), nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// New builds an expression directly from terms (values need not be
// sorted). Used by benchmarks and programmatic callers.
func New(terms ...Term) *Expr {
	cp := make([]Term, len(terms))
	for i, t := range terms {
		vs := append([]string(nil), t.Values...)
		cp[i] = Term{Key: t.Key, Values: vs}
	}
	return newExpr(cp)
}

func newExpr(terms []Term) *Expr {
	for i := range terms {
		sort.Strings(terms[i].Values)
		terms[i].Values = dedup(terms[i].Values)
	}
	sort.SliceStable(terms, func(i, j int) bool { return terms[i].Key < terms[j].Key })
	e := &Expr{terms: terms}
	e.canon = e.render()
	return e
}

// Matches reports whether the tag map satisfies every term. A nil
// expression matches all; a vector with no tags only matches the empty
// expression.
func (e *Expr) Matches(tags map[string]string) bool {
	if e == nil {
		return true
	}
	for i := range e.terms {
		t := &e.terms[i]
		v, ok := tags[t.Key]
		if !ok || !contains(t.Values, v) {
			return false
		}
	}
	return true
}

// Empty reports whether the expression constrains nothing.
func (e *Expr) Empty() bool { return e == nil || len(e.terms) == 0 }

// Terms returns a copy of the conjuncts in canonical order.
func (e *Expr) Terms() []Term {
	if e == nil {
		return nil
	}
	out := make([]Term, len(e.terms))
	for i, t := range e.terms {
		out[i] = Term{Key: t.Key, Values: append([]string(nil), t.Values...)}
	}
	return out
}

// Canonical returns the deterministic normal form: terms sorted by key
// (stable for duplicate keys), values sorted and deduplicated, single
// spelling for separators. Two expressions with equal Canonical()
// accept exactly the same tag maps, so it is safe to use as a cache-key
// component and for batch grouping. Nil and empty both render "".
func (e *Expr) Canonical() string {
	if e == nil {
		return ""
	}
	return e.canon
}

func (e *Expr) String() string { return e.Canonical() }

func (e *Expr) render() string {
	var b strings.Builder
	for i := range e.terms {
		if i > 0 {
			b.WriteString(" and ")
		}
		t := &e.terms[i]
		if len(t.Values) == 1 {
			b.WriteString(t.Key)
			b.WriteByte('=')
			b.WriteString(t.Values[0])
			continue
		}
		b.WriteString(t.Key)
		b.WriteString(" in {")
		for j, v := range t.Values {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v)
		}
		b.WriteByte('}')
	}
	return b.String()
}

func contains(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for _, v := range sorted {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// --- lexer ---

type tokKind int

const (
	tokWord   tokKind = iota // bare token (key, value, and/in keywords)
	tokEq                    // =
	tokLBrace                // {
	tokRBrace                // }
	tokComma                 // ,
	tokAndOp                 // &&
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func isWordByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == ':' || c == '/' || c == '-':
		return true
	}
	return false
}

func lex(s string) ([]token, error) {
	var toks []token
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '&':
			if i+1 >= len(s) || s[i+1] != '&' {
				return nil, fmt.Errorf("filter: stray '&' at offset %d", i)
			}
			toks = append(toks, token{tokAndOp, "&&", i})
			i += 2
		case isWordByte(c):
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			toks = append(toks, token{tokWord, s[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("filter: invalid character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() (token, bool) {
	if p.i >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

func isAnd(t token) bool {
	if t.kind == tokAndOp {
		return true
	}
	return t.kind == tokWord && strings.EqualFold(t.text, "and")
}

func isIn(t token) bool {
	return t.kind == tokWord && strings.EqualFold(t.text, "in")
}

func (p *parser) expr() ([]Term, error) {
	var terms []Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if len(terms) > MaxTerms {
			return nil, fmt.Errorf("filter: more than %d terms", MaxTerms)
		}
		sep, ok := p.peek()
		if !ok {
			return terms, nil
		}
		if !isAnd(sep) {
			return nil, fmt.Errorf("filter: expected 'and' at offset %d, got %q", sep.pos, sep.text)
		}
		p.i++
	}
}

func (p *parser) term() (Term, error) {
	key, ok := p.next()
	if !ok {
		return Term{}, fmt.Errorf("filter: expected tag key at end of input")
	}
	if key.kind != tokWord {
		return Term{}, fmt.Errorf("filter: expected tag key at offset %d, got %q", key.pos, key.text)
	}
	op, ok := p.next()
	if !ok {
		return Term{}, fmt.Errorf("filter: expected '=' or 'in' after %q", key.text)
	}
	switch {
	case op.kind == tokEq:
		v, ok := p.next()
		if !ok || v.kind != tokWord {
			return Term{}, fmt.Errorf("filter: expected value after %q=", key.text)
		}
		return Term{Key: key.text, Values: []string{v.text}}, nil
	case isIn(op):
		lb, ok := p.next()
		if !ok || lb.kind != tokLBrace {
			return Term{}, fmt.Errorf("filter: expected '{' after %q in", key.text)
		}
		var vals []string
		for {
			v, ok := p.next()
			if !ok || v.kind != tokWord {
				return Term{}, fmt.Errorf("filter: expected value in %q in {...}", key.text)
			}
			vals = append(vals, v.text)
			if len(vals) > MaxValuesPerTerm {
				return Term{}, fmt.Errorf("filter: more than %d values in one set", MaxValuesPerTerm)
			}
			sep, ok := p.next()
			if !ok {
				return Term{}, fmt.Errorf("filter: unterminated '{' in %q in {...}", key.text)
			}
			if sep.kind == tokRBrace {
				return Term{Key: key.text, Values: vals}, nil
			}
			if sep.kind != tokComma {
				return Term{}, fmt.Errorf("filter: expected ',' or '}' at offset %d, got %q", sep.pos, sep.text)
			}
		}
	default:
		return Term{}, fmt.Errorf("filter: expected '=' or 'in' after %q, got %q", key.text, op.text)
	}
}
