// Package vec provides the dense float32 vector primitives used by every
// index in this repository: distance metrics with unrolled inner loops,
// a contiguous Dataset container, and distance-computation accounting used
// by the cost model.
//
// All metrics operate on raw []float32 slices of equal length. The hot
// kernels are written with 4-way manual unrolling, which the Go compiler
// turns into reasonably tight SSE code; this mirrors the SIMD-optimised
// distance kernels the paper relies on (PANDA's "SIMD optimised buckets"
// and hnswlib's vectorised L2).
package vec

import (
	"fmt"
	"math"
)

// Metric identifies a distance (or dissimilarity) function on R^d.
type Metric int

const (
	// L2 is the Euclidean distance. The paper uses the L2 norm in all
	// experiments (Section V).
	L2 Metric = iota
	// SquaredL2 is the squared Euclidean distance. It induces the same
	// neighbor ordering as L2 while skipping the square root, and is the
	// metric actually evaluated inside the HNSW and KD hot loops.
	SquaredL2
	// L1 is the Manhattan distance. VP trees are metric-agnostic
	// (Yianilos), so we expose it to demonstrate that property.
	L1
	// Cosine is the cosine dissimilarity 1 - <a,b>/(|a||b|).
	Cosine
	// InnerProduct is the negated dot product -<a,b>; not a metric, but
	// common for maximum-inner-product search with HNSW.
	InnerProduct
)

// String returns the canonical lowercase name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "l2"
	case SquaredL2:
		return "sqL2"
	case L1:
		return "l1"
	case Cosine:
		return "cosine"
	case InnerProduct:
		return "ip"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric converts a name produced by Metric.String back into a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "l2":
		return L2, nil
	case "sqL2", "sql2":
		return SquaredL2, nil
	case "l1":
		return L1, nil
	case "cosine":
		return Cosine, nil
	case "ip":
		return InnerProduct, nil
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// DistFunc computes the dissimilarity between two equal-length vectors.
type DistFunc func(a, b []float32) float32

// Func returns the distance kernel for the metric.
func (m Metric) Func() DistFunc {
	switch m {
	case L2:
		return L2Distance
	case SquaredL2:
		return SquaredL2Distance
	case L1:
		return L1Distance
	case Cosine:
		return CosineDistance
	case InnerProduct:
		return InnerProductDistance
	default:
		panic("vec: unknown metric " + m.String())
	}
}

// Monotone reports whether the metric is a monotone transform of L2, i.e.
// whether top-k sets under it coincide with top-k sets under L2.
func (m Metric) Monotone() bool { return m == L2 || m == SquaredL2 }

// SquaredL2Distance returns sum_i (a_i-b_i)^2 with a 4-way unrolled loop.
func SquaredL2Distance(a, b []float32) float32 {
	// The bounds hint lets the compiler eliminate checks in the unrolled
	// body.
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2Distance returns the Euclidean distance between a and b.
func L2Distance(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2Distance(a, b))))
}

// L1Distance returns sum_i |a_i-b_i|.
func L1Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var s0, s1 float32
	n := len(a)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0 += abs32(a[i] - b[i])
		s1 += abs32(a[i+1] - b[i+1])
	}
	if i < n {
		s0 += abs32(a[i] - b[i])
	}
	return s0 + s1
}

// Dot returns the inner product <a,b>.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm |a|.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// CosineDistance returns 1 - <a,b>/(|a||b|). Zero vectors are treated as
// maximally distant (distance 1) to keep the function total.
func CosineDistance(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

// InnerProductDistance returns -<a,b>.
func InnerProductDistance(a, b []float32) float32 { return -Dot(a, b) }

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Scale multiplies a in place by s and returns it.
func Scale(a []float32, s float32) []float32 {
	for i := range a {
		a[i] *= s
	}
	return a
}

// Add accumulates b into a in place and returns a.
func Add(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// Normalize scales a in place to unit Euclidean norm. Zero vectors are
// left unchanged.
func Normalize(a []float32) []float32 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	return Scale(a, 1/n)
}
