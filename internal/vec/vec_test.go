package vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func naiveSqL2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func TestSquaredL2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 16, 31, 128, 960} {
		a, b := randVec(rng, dim), randVec(rng, dim)
		got := float64(SquaredL2Distance(a, b))
		want := naiveSqL2(a, b)
		if math.Abs(got-want) > 1e-3*(1+want) {
			t.Errorf("dim %d: got %v want %v", dim, got, want)
		}
	}
}

func TestL2IsSqrtOfSquared(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randVec(rng, 33), randVec(rng, 33)
	if got, want := L2Distance(a, b), float32(math.Sqrt(float64(SquaredL2Distance(a, b)))); got != want {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestL1MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{1, 2, 5, 64, 97} {
		a, b := randVec(rng, dim), randVec(rng, dim)
		var want float64
		for i := range a {
			want += math.Abs(float64(a[i]) - float64(b[i]))
		}
		if got := float64(L1Distance(a, b)); math.Abs(got-want) > 1e-3*(1+want) {
			t.Errorf("dim %d: got %v want %v", dim, got, want)
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineDistance(a, b); math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); math.Abs(float64(got)) > 1e-6 {
		t.Errorf("self cosine distance = %v, want 0", got)
	}
	zero := []float32{0, 0}
	if got := CosineDistance(a, zero); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestInnerProductDistance(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	if got := InnerProductDistance(a, b); got != -11 {
		t.Errorf("got %v want -11", got)
	}
}

// Property: metric axioms (identity, symmetry, triangle inequality) hold
// for the true metrics on random vectors.
func TestMetricAxiomsQuick(t *testing.T) {
	for _, m := range []Metric{L2, L1} {
		f := m.Func()
		cfg := &quick.Config{MaxCount: 200}
		err := quick.Check(func(ax, bx, cx [8]float32) bool {
			a, b, c := ax[:], bx[:], cx[:]
			dab := float64(f(a, b))
			dba := float64(f(b, a))
			dac := float64(f(a, c))
			dcb := float64(f(c, b))
			if f(a, a) != 0 {
				return false
			}
			if math.Abs(dab-dba) > 1e-4*(1+dab) {
				return false
			}
			return dab <= dac+dcb+1e-3*(1+dab)
		}, cfg)
		if err != nil {
			t.Errorf("metric %v violates axioms: %v", m, err)
		}
	}
}

// Property: SquaredL2 is ordering-equivalent to L2.
func TestSquaredL2OrderEquivalence(t *testing.T) {
	err := quick.Check(func(q, ax, bx [6]float32) bool {
		l2a, l2b := L2Distance(q[:], ax[:]), L2Distance(q[:], bx[:])
		sa, sb := SquaredL2Distance(q[:], ax[:]), SquaredL2Distance(q[:], bx[:])
		return (l2a < l2b) == (sa < sb) || l2a == l2b
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMetricStringRoundtrip(t *testing.T) {
	for _, m := range []Metric{L2, SquaredL2, L1, Cosine, InnerProduct} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("roundtrip %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestMonotone(t *testing.T) {
	if !L2.Monotone() || !SquaredL2.Monotone() {
		t.Error("L2/SquaredL2 should be monotone")
	}
	if L1.Monotone() || Cosine.Monotone() {
		t.Error("L1/Cosine should not be monotone")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	SquaredL2Distance([]float32{1}, []float32{1, 2})
}

func TestScaleAddNormalize(t *testing.T) {
	a := []float32{1, 2, 3}
	Scale(a, 2)
	if a[2] != 6 {
		t.Errorf("Scale: %v", a)
	}
	Add(a, []float32{1, 1, 1})
	if a[0] != 3 {
		t.Errorf("Add: %v", a)
	}
	Normalize(a)
	if math.Abs(float64(Norm(a))-1) > 1e-6 {
		t.Errorf("Normalize: norm = %v", Norm(a))
	}
	z := []float32{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(0) changed the vector: %v", z)
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset(3, 4)
	d.Append([]float32{1, 2, 3}, 10)
	d.Append([]float32{4, 5, 6}, 11)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.At(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("At(1) = %v", got)
	}
	if d.ID(0) != 10 {
		t.Errorf("ID(0) = %d", d.ID(0))
	}
	v := d.Slice(1, 2)
	if v.Len() != 1 || v.ID(0) != 11 {
		t.Errorf("Slice view wrong: %+v", v)
	}
	sel := d.Select([]int{1, 0})
	if sel.ID(0) != 11 || sel.ID(1) != 10 {
		t.Errorf("Select wrong: %v", sel.IDs)
	}
	c := d.Clone()
	c.Data[0] = 99
	if d.Data[0] == 99 {
		t.Error("Clone shares storage")
	}
	if d.Bytes() != int64(2*3*4+2*8) {
		t.Errorf("Bytes = %d", d.Bytes())
	}
}

func TestFromRows(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if d.Len() != 3 || d.Dim != 2 || d.ID(2) != 2 {
		t.Fatalf("FromRows: %+v", d)
	}
}

func TestDatasetAppendAllAndMismatch(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	a.AppendAll(b)
	if a.Len() != 2 || a.At(1)[0] != 3 {
		t.Fatalf("AppendAll: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic appending wrong dim")
		}
	}()
	a.Append([]float32{1}, 0)
}

func TestDatasetBinaryRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDataset(7, 100)
	for i := 0; i < 100; i++ {
		d.Append(randVec(rng, 7), int64(i*3))
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != d.Dim || got.Len() != d.Len() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Dim, got.Len(), d.Dim, d.Len())
	}
	for i := range d.Data {
		if got.Data[i] != d.Data[i] {
			t.Fatalf("data[%d] = %v want %v", i, got.Data[i], d.Data[i])
		}
	}
	for i := range d.IDs {
		if got.IDs[i] != d.IDs[i] {
			t.Fatalf("id[%d] = %v want %v", i, got.IDs[i], d.IDs[i])
		}
	}
}

func TestReadBinaryCorruptHeader(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("expected error for zero-dim header")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error for short header")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	f := Counted(SquaredL2Distance, &c)
	a := []float32{1, 2}
	f(a, a)
	f(a, a)
	if c.Load() != 2 {
		t.Errorf("count = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Errorf("after reset = %d", c.Load())
	}
	if g := Counted(SquaredL2Distance, nil); g == nil {
		t.Error("nil counter should return the bare function")
	}
}

func BenchmarkSquaredL2Dim128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, y := randVec(rng, 128), randVec(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredL2Distance(x, y)
	}
}

func BenchmarkSquaredL2Dim960(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x, y := randVec(rng, 960), randVec(rng, 960)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredL2Distance(x, y)
	}
}
