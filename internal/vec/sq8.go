package vec

import (
	"fmt"
	"math"
)

// SQ8 is a per-dimension scalar quantizer mapping float32 vectors onto
// one byte per dimension: code_i = round((v_i - Min_i) / Scale_i),
// clamped to [0,255]. It is the compressed first-pass representation of
// the frozen hot path (DESIGN.md §9): candidate generation scans these
// codes with integer kernels at 1/4 the memory traffic of float32, and
// the top candidates are re-ranked against the full-precision arena.
//
// Per-dimension training follows the classic SQ8 recipe (faiss
// ScalarQuantizer QT_8bit): each dimension gets its own [min,max] range,
// so dimensions with different spreads keep their resolution. Distances
// between codes are computed in the byte domain (symmetric: the query is
// quantized too), which weights every dimension by 1/Scale_i² relative
// to true L2 — exact ranking is restored by the float32 re-rank stage.
type SQ8 struct {
	// Min[i] is the lower bound of dimension i's quantization range.
	Min []float32
	// Scale[i] is the quantization step of dimension i; 0 marks a
	// degenerate (constant) dimension whose codes are always 0.
	Scale []float32
}

// Dim returns the dimensionality the codec was trained for.
func (s *SQ8) Dim() int { return len(s.Min) }

// Bytes returns the codec's own memory footprint.
func (s *SQ8) Bytes() int64 { return int64(len(s.Min)+len(s.Scale)) * 4 }

// TrainSQ8 fits per-dimension [min,max] ranges over every row of ds.
// Vectors containing NaN or ±Inf are rejected: a single poisoned row
// would stretch a dimension's range to garbage and silently zero the
// resolution of every other row.
func TrainSQ8(ds *Dataset) (*SQ8, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("vec: TrainSQ8 on empty dataset")
	}
	dim := ds.Dim
	lo := make([]float32, dim)
	hi := make([]float32, dim)
	copy(lo, ds.At(0))
	copy(hi, ds.At(0))
	for i := 0; i < ds.Len(); i++ {
		v := ds.At(i)
		for j, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return nil, fmt.Errorf("vec: TrainSQ8: row %d dim %d is %v", i, j, x)
			}
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	s := &SQ8{Min: lo, Scale: make([]float32, dim)}
	for j := range s.Scale {
		s.Scale[j] = (hi[j] - lo[j]) / 255
	}
	return s, nil
}

// Encode quantizes v into dst (len == Dim). Out-of-range values clamp to
// the trained range; NaN/Inf are rejected so corrupt inputs cannot
// silently encode as 0 or 255.
func (s *SQ8) Encode(v []float32, dst []uint8) error {
	if len(v) != len(s.Min) || len(dst) != len(s.Min) {
		return fmt.Errorf("vec: SQ8 encode dim %d/%d, codec dim %d", len(v), len(dst), len(s.Min))
	}
	for j, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return fmt.Errorf("vec: SQ8 encode: dim %d is %v", j, x)
		}
		if s.Scale[j] == 0 {
			dst[j] = 0
			continue
		}
		q := (x - s.Min[j]) / s.Scale[j]
		if q <= 0 {
			dst[j] = 0
		} else if q >= 255 {
			dst[j] = 255
		} else {
			dst[j] = uint8(q + 0.5)
		}
	}
	return nil
}

// EncodeAll quantizes every row of ds into one contiguous code slab
// (row i at codes[i*dim : (i+1)*dim]).
func (s *SQ8) EncodeAll(ds *Dataset) ([]uint8, error) {
	if ds.Dim != s.Dim() {
		return nil, fmt.Errorf("vec: SQ8 EncodeAll dim %d, codec dim %d", ds.Dim, s.Dim())
	}
	out := make([]uint8, ds.Len()*ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		if err := s.Encode(ds.At(i), out[i*ds.Dim:(i+1)*ds.Dim]); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return out, nil
}

// Decode reconstructs the midpoint value of each code cell into dst and
// returns it. The reconstruction error per dimension is at most
// Scale_i/2 for in-range inputs (see TestSQ8RoundTripBound).
func (s *SQ8) Decode(code []uint8, dst []float32) []float32 {
	for j, c := range code {
		dst[j] = s.Min[j] + float32(c)*s.Scale[j]
	}
	return dst
}

// SquaredL2Bytes returns sum_i (a_i-b_i)² over uint8 codes with an
// 8-way unrolled integer inner loop — the quantized first-pass kernel of
// the frozen hot path. The result is exact in uint32 for dim ≤ 66049
// (dim·255² < 2⁶⁴ would need uint64; 255²·66049 < 2³²).
func SquaredL2Bytes(a, b []uint8) uint32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 uint32
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := int32(a[i]) - int32(b[i])
		d1 := int32(a[i+1]) - int32(b[i+1])
		d2 := int32(a[i+2]) - int32(b[i+2])
		d3 := int32(a[i+3]) - int32(b[i+3])
		d4 := int32(a[i+4]) - int32(b[i+4])
		d5 := int32(a[i+5]) - int32(b[i+5])
		d6 := int32(a[i+6]) - int32(b[i+6])
		d7 := int32(a[i+7]) - int32(b[i+7])
		s0 += uint32(d0*d0) + uint32(d4*d4)
		s1 += uint32(d1*d1) + uint32(d5*d5)
		s2 += uint32(d2*d2) + uint32(d6*d6)
		s3 += uint32(d3*d3) + uint32(d7*d7)
	}
	for ; i < n; i++ {
		d := int32(a[i]) - int32(b[i])
		s0 += uint32(d * d)
	}
	return s0 + s1 + s2 + s3
}

// DotBytes returns sum_i a_i·b_i over uint8 codes (integer inner
// product; useful for IP/cosine-style first passes).
func DotBytes(a, b []uint8) uint32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 uint32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += uint32(a[i]) * uint32(b[i])
		s1 += uint32(a[i+1]) * uint32(b[i+1])
		s2 += uint32(a[i+2]) * uint32(b[i+2])
		s3 += uint32(a[i+3]) * uint32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += uint32(a[i]) * uint32(b[i])
	}
	return s0 + s1 + s2 + s3
}
