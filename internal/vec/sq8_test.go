package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randDataset(rng *rand.Rand, n, dim int, lo, hi float32) *Dataset {
	ds := NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = lo + rng.Float32()*(hi-lo)
		}
		ds.Append(v, int64(i))
	}
	return ds
}

// TestSQ8RoundTripBound pins the codec's headline contract: for any
// in-range input, decode(encode(v)) is within Scale_j/2 per dimension.
func TestSQ8RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randDataset(rng, 500, 24, -3, 7)
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 24 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	code := make([]uint8, ds.Dim)
	dec := make([]float32, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		v := ds.At(i)
		if err := s.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		s.Decode(code, dec)
		for j := range v {
			bound := s.Scale[j]/2 + 1e-4
			if d := float32(math.Abs(float64(dec[j] - v[j]))); d > bound {
				t.Fatalf("row %d dim %d: reconstruction error %v > Scale/2 = %v", i, j, d, bound)
			}
		}
	}
}

// TestSQ8DegenerateDimension: a constant dimension gets Scale 0 and
// every code 0, and decoding returns the constant exactly.
func TestSQ8DegenerateDimension(t *testing.T) {
	ds := NewDataset(2, 4)
	for i := 0; i < 4; i++ {
		ds.Append([]float32{42, float32(i)}, int64(i))
	}
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale[0] != 0 {
		t.Fatalf("constant dim scale = %v", s.Scale[0])
	}
	code := make([]uint8, 2)
	dec := make([]float32, 2)
	if err := s.Encode([]float32{42, 2}, code); err != nil {
		t.Fatal(err)
	}
	if code[0] != 0 {
		t.Fatalf("constant dim code = %d", code[0])
	}
	if s.Decode(code, dec); dec[0] != 42 {
		t.Fatalf("constant dim decodes to %v", dec[0])
	}
}

// TestSQ8RejectsNonFinite: NaN/Inf anywhere must fail training and
// encoding — one poisoned row must not silently zero the codec's
// resolution.
func TestSQ8RejectsNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, bad := range []float32{nan, inf, -inf} {
		ds := NewDataset(2, 2)
		ds.Append([]float32{1, 2}, 0)
		ds.Append([]float32{bad, 3}, 1)
		if _, err := TrainSQ8(ds); err == nil {
			t.Errorf("TrainSQ8 accepted %v", bad)
		}
	}
	ds := NewDataset(2, 2)
	ds.Append([]float32{0, 0}, 0)
	ds.Append([]float32{1, 1}, 1)
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]uint8, 2)
	for _, bad := range []float32{nan, inf, -inf} {
		if err := s.Encode([]float32{bad, 0}, code); err == nil {
			t.Errorf("Encode accepted %v", bad)
		}
	}
	if _, err := TrainSQ8(NewDataset(3, 0)); err == nil {
		t.Error("TrainSQ8 accepted an empty dataset")
	}
}

// TestSQ8OutOfRangeClamps: values beyond the trained range clamp to the
// edge codes rather than wrapping.
func TestSQ8OutOfRangeClamps(t *testing.T) {
	ds := NewDataset(1, 2)
	ds.Append([]float32{0}, 0)
	ds.Append([]float32{10}, 1)
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]uint8, 1)
	if s.Encode([]float32{-100}, code); code[0] != 0 {
		t.Errorf("below-range code = %d, want 0", code[0])
	}
	if s.Encode([]float32{100}, code); code[0] != 255 {
		t.Errorf("above-range code = %d, want 255", code[0])
	}
}

// TestSQ8EncodeAllLayout: the slab is row-major and matches per-row
// encoding.
func TestSQ8EncodeAllLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDataset(rng, 50, 7, 0, 1)
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := s.EncodeAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(slab) != ds.Len()*ds.Dim {
		t.Fatalf("slab len %d", len(slab))
	}
	row := make([]uint8, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		if err := s.Encode(ds.At(i), row); err != nil {
			t.Fatal(err)
		}
		for j, c := range row {
			if slab[i*ds.Dim+j] != c {
				t.Fatalf("row %d dim %d: slab %d != encode %d", i, j, slab[i*ds.Dim+j], c)
			}
		}
	}
}

// TestSquaredL2BytesExact: the unrolled kernel is exactly the naive sum
// for all lengths around the unroll width.
func TestSquaredL2BytesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 129} {
		a := make([]uint8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = uint8(rng.Intn(256))
			b[i] = uint8(rng.Intn(256))
		}
		var want uint32
		for i := range a {
			d := int32(a[i]) - int32(b[i])
			want += uint32(d * d)
		}
		if got := SquaredL2Bytes(a, b); got != want {
			t.Errorf("n=%d: SquaredL2Bytes = %d, want %d", n, got, want)
		}
		var wantDot uint32
		for i := range a {
			wantDot += uint32(a[i]) * uint32(b[i])
		}
		if got := DotBytes(a, b); got != wantDot {
			t.Errorf("n=%d: DotBytes = %d, want %d", n, got, wantDot)
		}
	}
}

func TestSquaredL2BytesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	SquaredL2Bytes(make([]uint8, 3), make([]uint8, 4))
}

// TestSQ8RankCorrelation: byte-domain distances must rank candidates
// nearly like float32 distances when dimensions share a scale — the
// property the quantized first pass rides on. Top-10-by-bytes must
// recover almost all of top-10-by-float.
func TestSQ8RankCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, dim, k = 2000, 32, 10
	ds := randDataset(rng, n, dim, 0, 1)
	s, err := TrainSQ8(ds)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := s.EncodeAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	var overlap, total int
	qc := make([]uint8, dim)
	for qi := 0; qi < 20; qi++ {
		q := ds.At(rng.Intn(n))
		if err := s.Encode(q, qc); err != nil {
			t.Fatal(err)
		}
		type scored struct {
			i int
			f float32
			b uint32
		}
		all := make([]scored, n)
		for i := 0; i < n; i++ {
			all[i] = scored{i, SquaredL2Distance(q, ds.At(i)), SquaredL2Bytes(qc, slab[i*dim:(i+1)*dim])}
		}
		byF := append([]scored(nil), all...)
		sort.Slice(byF, func(a, b int) bool { return byF[a].f < byF[b].f })
		byB := append([]scored(nil), all...)
		sort.Slice(byB, func(a, b int) bool { return byB[a].b < byB[b].b })
		top := make(map[int]bool, k)
		for _, sc := range byF[:k] {
			top[sc.i] = true
		}
		for _, sc := range byB[:k] {
			if top[sc.i] {
				overlap++
			}
		}
		total += k
	}
	if frac := float64(overlap) / float64(total); frac < 0.9 {
		t.Errorf("byte-domain top-%d recovers only %.2f of float top-%d", k, frac, k)
	}
}
