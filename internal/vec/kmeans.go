package vec

import "math/rand"

// Quantization training helpers shared by every compressed index in the
// repository (ivfpq's coarse/subspace codebooks, grip's PQ layer via
// ivfpq, and ad-hoc centroid routers). They used to live as private
// copies inside the quantizing packages; the hot-path refactor hoisted
// them here so one tested implementation backs all of them.

// KMeans runs Lloyd's algorithm and returns k centroids over ds rows.
// Empty clusters are reseeded from random points, keeping exactly k
// non-degenerate centroids. With k >= ds.Len() every row becomes its own
// centroid. Deterministic for a given rng state.
func KMeans(ds *Dataset, k, iters int, rng *rand.Rand) *Dataset {
	n, dim := ds.Len(), ds.Dim
	if k > n {
		k = n
	}
	cents := NewDataset(dim, k)
	for _, i := range rng.Perm(n)[:k] {
		cents.Append(ds.At(i), int64(cents.Len()))
	}
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dim)
	for it := 0; it < iters; it++ {
		changed := 0
		for i := 0; i < n; i++ {
			best, bestD := 0, float32(0)
			v := ds.At(i)
			for c := 0; c < k; c++ {
				d := SquaredL2Distance(v, cents.At(c))
				if c == 0 || d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			v := ds.At(i)
			for j := 0; j < dim; j++ {
				sums[c*dim+j] += float64(v[j])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// reseed from a random point
				copy(cents.At(c), ds.At(rng.Intn(n)))
				continue
			}
			cc := cents.At(c)
			for j := 0; j < dim; j++ {
				cc[j] = float32(sums[c*dim+j] / float64(counts[c]))
			}
		}
		if changed == 0 {
			break
		}
	}
	return cents
}

// NearestCentroid returns the index of the centroid closest to v under
// squared L2.
func NearestCentroid(cents *Dataset, v []float32) int {
	best, bestD := 0, float32(0)
	for c := 0; c < cents.Len(); c++ {
		d := SquaredL2Distance(v, cents.At(c))
		if c == 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
