package vec

import "sync/atomic"

// Counter counts distance computations. The cost model converts these
// counts into modelled compute time, which is how the repository
// extrapolates the paper's 8192-core runs; see internal/costmodel.
//
// Counter is safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Add records n distance computations.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Load returns the number of recorded distance computations.
func (c *Counter) Load() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Counted wraps f so that every invocation increments c. A nil counter
// returns f unchanged.
func Counted(f DistFunc, c *Counter) DistFunc {
	if c == nil {
		return f
	}
	return func(a, b []float32) float32 {
		c.Add(1)
		return f(a, b)
	}
}
