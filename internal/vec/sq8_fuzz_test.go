package vec

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSQ8Codec throws arbitrary float32 data at the SQ8 codec. The
// contract under fuzzing:
//
//   - training and encoding never panic;
//   - any NaN/±Inf anywhere in the input is rejected by TrainSQ8 (and
//     by Encode for finite-trained codecs) — corrupt rows never encode;
//   - for finite inputs, every code round-trips within Scale/2 per
//     dimension and re-encoding the decoded vector is stable (codes move
//     at most one cell, the float-rounding tolerance).
func FuzzSQ8Codec(f *testing.F) {
	mk := func(vals ...float32) []byte {
		b := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
		}
		return b
	}
	f.Add(mk(0, 1, 2, 3, 4, 5))
	f.Add(mk(42, 42, 42, 42))                                       // degenerate range
	f.Add(mk(float32(math.NaN()), 1, 2, 3))                         // NaN row
	f.Add(mk(float32(math.Inf(1)), 0, float32(math.Inf(-1)), 0))    // ±Inf
	f.Add(mk(-math.MaxFloat32, math.MaxFloat32, 0, 1))              // extreme range
	f.Add(mk(1e-38, -1e-38, 0, 0))                                  // denormal-ish
	f.Add(mk(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1, 2, 3)) // 3 rows of 4

	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float32, len(data)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		}
		// Frame the values as a dataset of up to 4-dim rows; whatever
		// does not fill a row is dropped.
		dim := 4
		if len(vals) < dim {
			dim = len(vals)
		}
		if dim == 0 {
			return
		}
		n := len(vals) / dim
		ds := NewDataset(dim, n)
		bad := false
		for i := 0; i < n; i++ {
			row := vals[i*dim : (i+1)*dim]
			for _, x := range row {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					bad = true
				}
			}
			ds.Append(row, int64(i))
		}
		s, err := TrainSQ8(ds)
		if bad {
			if err == nil {
				t.Fatalf("TrainSQ8 accepted non-finite input %v", vals)
			}
			return
		}
		if err != nil {
			t.Fatalf("TrainSQ8 rejected finite input %v: %v", vals, err)
		}
		// The trained range itself may overflow to +Inf scale for
		// extreme spreads; codes must still land in range and decode
		// finitely when the scale is finite.
		code := make([]uint8, dim)
		dec := make([]float32, dim)
		re := make([]uint8, dim)
		for i := 0; i < n; i++ {
			v := ds.At(i)
			if err := s.Encode(v, code); err != nil {
				t.Fatalf("Encode rejected trained row %v: %v", v, err)
			}
			s.Decode(code, dec)
			for j := range v {
				sc := float64(s.Scale[j])
				if math.IsInf(sc, 0) {
					continue // range overflow: reconstruction bound is void
				}
				d := math.Abs(float64(dec[j]) - float64(v[j]))
				// Float32 rounding in encode ((x-Min)/Scale) and decode
				// (Min + c*Scale) is proportional to the full quantized
				// range, not just |v| — the slack term must cover
				// |Min| + 255*Scale or huge-range rows flake the bound.
				slack := 1e-6 * (1 + math.Abs(float64(v[j])) + math.Abs(float64(s.Min[j])) + 256*sc)
				if bound := sc/2 + slack; d > bound && !math.IsInf(d, 0) {
					t.Fatalf("row %d dim %d: |decode-encode| = %v > Scale/2 = %v (v=%v)", i, j, d, bound, v[j])
				}
			}
			if math.IsInf(float64(dec[0]), 0) || math.IsNaN(float64(dec[0])) {
				continue
			}
			if err := s.Encode(dec, re); err != nil {
				t.Fatalf("re-encoding decoded row failed: %v", err)
			}
			for j := range re {
				d := int(re[j]) - int(code[j])
				if d < -1 || d > 1 {
					t.Fatalf("row %d dim %d: code unstable across round-trip: %d -> %d", i, j, code[j], re[j])
				}
			}
		}
	})
}
