package vec

import (
	"math/rand"
	"testing"
)

// These pin the behavior of the kmeans helpers hoisted out of
// internal/ivfpq: same RNG consumption order, same reseeding policy, so
// quantized indexes built before and after the move are bit-identical.

func TestKMeansClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// two well separated blobs: centroids must land near them
	ds := NewDataset(2, 200)
	for i := 0; i < 200; i++ {
		base := float32(0)
		if i%2 == 1 {
			base = 100
		}
		ds.Append([]float32{base + float32(rng.NormFloat64()), base + float32(rng.NormFloat64())}, int64(i))
	}
	cents := KMeans(ds, 2, 20, rng)
	if cents.Len() != 2 {
		t.Fatalf("%d centroids", cents.Len())
	}
	a, b := cents.At(0)[0], cents.At(1)[0]
	if a > b {
		a, b = b, a
	}
	if a > 10 || b < 90 {
		t.Errorf("centroids not at blobs: %v %v", a, b)
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := NewDataset(2, 3)
	for i := 0; i < 3; i++ {
		ds.Append([]float32{float32(i), 0}, int64(i))
	}
	cents := KMeans(ds, 10, 5, rng)
	if cents.Len() != 3 {
		t.Errorf("k should clamp to n: %d", cents.Len())
	}
}

// TestKMeansDeterministic: a fixed seed yields identical centroids — the
// property that keeps rebuilt quantized indexes reproducible.
func TestKMeansDeterministic(t *testing.T) {
	mk := func() *Dataset {
		rng := rand.New(rand.NewSource(7))
		ds := NewDataset(4, 300)
		v := make([]float32, 4)
		for i := 0; i < 300; i++ {
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			ds.Append(v, int64(i))
		}
		return ds
	}
	a := KMeans(mk(), 8, 10, rand.New(rand.NewSource(9)))
	b := KMeans(mk(), 8, 10, rand.New(rand.NewSource(9)))
	if a.Len() != b.Len() {
		t.Fatalf("lens %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.At(i), b.At(i)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("centroid %d dim %d differs: %v vs %v", i, j, av[j], bv[j])
			}
		}
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := NewDataset(2, 3)
	cents.Append([]float32{0, 0}, 0)
	cents.Append([]float32{10, 0}, 1)
	cents.Append([]float32{0, 10}, 2)
	cases := []struct {
		v    []float32
		want int
	}{
		{[]float32{1, 1}, 0},
		{[]float32{9, -1}, 1},
		{[]float32{1, 8}, 2},
		{[]float32{0, 0}, 0},
	}
	for _, c := range cases {
		if got := NearestCentroid(cents, c.v); got != c.want {
			t.Errorf("NearestCentroid(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
