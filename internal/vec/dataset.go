package vec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Dataset stores n vectors of a fixed dimension contiguously. Contiguous
// storage matters at this scale: it keeps the per-vector overhead at zero
// and makes sequential distance scans cache-friendly, exactly like the
// flat buffers hnswlib and PANDA use.
//
// Datasets additionally carry a parallel ID slice so that a partition of a
// larger dataset remembers the global identity of each row; a freshly
// generated dataset has IDs 0..n-1.
type Dataset struct {
	Dim  int
	Data []float32 // len = n*Dim
	IDs  []int64   // len = n; global identity of each row
}

// NewDataset allocates an empty dataset of the given dimension with
// capacity for n vectors.
func NewDataset(dim, n int) *Dataset {
	if dim <= 0 {
		panic("vec: non-positive dimension")
	}
	return &Dataset{
		Dim:  dim,
		Data: make([]float32, 0, n*dim),
		IDs:  make([]int64, 0, n),
	}
}

// FromRows builds a dataset (IDs 0..n-1) from a slice of rows, copying the
// data into contiguous storage.
func FromRows(rows [][]float32) *Dataset {
	if len(rows) == 0 {
		panic("vec: FromRows on empty input")
	}
	d := NewDataset(len(rows[0]), len(rows))
	for _, r := range rows {
		d.Append(r, int64(d.Len()))
	}
	return d
}

// Len returns the number of vectors.
func (d *Dataset) Len() int { return len(d.IDs) }

// At returns the i-th vector as a subslice of the backing array. Callers
// must not retain it across Append calls.
func (d *Dataset) At(i int) []float32 {
	return d.Data[i*d.Dim : (i+1)*d.Dim : (i+1)*d.Dim]
}

// ID returns the global ID of row i.
func (d *Dataset) ID(i int) int64 { return d.IDs[i] }

// Append adds one vector with the given global ID.
func (d *Dataset) Append(v []float32, id int64) {
	if len(v) != d.Dim {
		panic(fmt.Sprintf("vec: appending %d-dim vector to %d-dim dataset", len(v), d.Dim))
	}
	d.Data = append(d.Data, v...)
	d.IDs = append(d.IDs, id)
}

// AppendAll copies every row of src into d.
func (d *Dataset) AppendAll(src *Dataset) {
	if src.Dim != d.Dim {
		panic("vec: dimension mismatch in AppendAll")
	}
	d.Data = append(d.Data, src.Data...)
	d.IDs = append(d.IDs, src.IDs...)
}

// Slice returns a view dataset containing rows [lo,hi). The view shares
// backing storage with d.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{
		Dim:  d.Dim,
		Data: d.Data[lo*d.Dim : hi*d.Dim],
		IDs:  d.IDs[lo:hi],
	}
}

// Select builds a new dataset from the rows listed in idx.
func (d *Dataset) Select(idx []int) *Dataset {
	out := NewDataset(d.Dim, len(idx))
	for _, i := range idx {
		out.Append(d.At(i), d.IDs[i])
	}
	return out
}

// Clone returns a deep copy of d.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Dim:  d.Dim,
		Data: append([]float32(nil), d.Data...),
		IDs:  append([]int64(nil), d.IDs...),
	}
	return out
}

// Bytes returns the payload size of the dataset in bytes (vectors + IDs),
// used by the communication cost accounting.
func (d *Dataset) Bytes() int64 {
	return int64(len(d.Data))*4 + int64(len(d.IDs))*8
}

// WriteBinary serialises the dataset in a simple little-endian framing:
// dim, n, IDs, data. It is the on-disk and on-wire format used by the
// cluster runtime when shuffling partitions.
func (d *Dataset) WriteBinary(w io.Writer) error {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(d.Dim))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(d.Len()))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*1024)
	// IDs
	for off := 0; off < len(d.IDs); {
		n := min(len(buf)/8, len(d.IDs)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(d.IDs[off+i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		off += n
	}
	// data
	for off := 0; off < len(d.Data); {
		n := min(len(buf)/4, len(d.Data)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(d.Data[off+i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// ReadBinary parses a dataset previously written with WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint64(hdr[0:8]))
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if dim <= 0 || n < 0 {
		return nil, fmt.Errorf("vec: corrupt dataset header dim=%d n=%d", dim, n)
	}
	d := &Dataset{Dim: dim, Data: make([]float32, n*dim), IDs: make([]int64, n)}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for i := range d.IDs {
		d.IDs[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	buf = make([]byte, 4*n*dim)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for i := range d.Data {
		d.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return d, nil
}
