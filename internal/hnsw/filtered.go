package hnsw

import (
	"fmt"
	"math"

	"repro/internal/topk"
)

// SearchFiltered returns the approximate k nearest neighbors of q whose
// global ID satisfies keep, using the configured EfSearch beam width.
// keep==nil degrades to an unfiltered search.
func (g *Graph) SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	return g.SearchEfFiltered(q, k, g.cfg.EfSearch, keep)
}

// SearchEfFiltered is the filter-pushdown variant of SearchEf: the
// predicate is evaluated during traversal, and only matching nodes are
// admitted into the result set, while the beam frontier still expands
// through non-matching nodes so the search can tunnel across regions of
// the graph that the filter excludes. This is strictly stronger than
// post-filtering a top-k list: at low selectivity the collector fills
// slowly, which keeps the termination bound wide and forces the beam to
// keep exploring until it has found k matching points (or exhausted the
// connected component).
//
// The upper layers are traversed unfiltered — they only route the
// descent, and constraining them would strand the search far from the
// filtered region. keep is called at most once per visited node, and
// must be safe for concurrent use if the graph is searched from
// multiple goroutines.
func (g *Graph) SearchEfFiltered(q []float32, k, ef int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	if keep == nil {
		return g.SearchEf(q, k, ef)
	}
	g.epMu.RLock()
	if g.empty {
		g.epMu.RUnlock()
		return nil, Stats{}, ErrEmpty
	}
	s := g.snapshotLocked()
	g.epMu.RUnlock()

	if len(q) != s.dim {
		return nil, Stats{}, fmt.Errorf("hnsw: query dim %d, index dim %d", len(q), s.dim)
	}
	if ef < k {
		ef = k
	}
	var st Stats
	cur := s.entry
	curDist := g.dist(q, s.vec(cur))
	st.DistComps++
	for l := s.maxL; l >= 1; l-- {
		cur, curDist = g.greedyStep(&s, q, cur, curDist, l, &st)
	}

	ctx := ctxPool.Get().(*searchCtx)
	cands := g.searchLayerFiltered(&s, q, cur, ef, 0, ctx, &st, keep)
	ctxPool.Put(ctx)

	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]topk.Result, len(cands))
	for i, c := range cands {
		d := c.dist
		if g.sqrtL {
			d = float32(math.Sqrt(float64(d)))
		}
		out[i] = topk.Result{ID: s.ids[c.id], Dist: d}
	}
	return out, st, nil
}

// searchLayerFiltered is searchLayer (Algorithm 2) with the result
// collector gated on keep. Every visited node joins the frontier under
// the usual bound test — exploration is driven by the geometry of the
// graph, not by the filter — but only nodes whose ID matches the
// predicate count toward the ef result set and therefore toward the
// termination bound.
func (g *Graph) searchLayerFiltered(s *snap, q []float32, entry uint32, ef, l int, ctx *searchCtx, st *Stats, keep func(int64) bool) []cand {
	ctx.reset(len(s.nodes))
	var frontier topk.MinQueue
	results := topk.New(ef)

	d := g.dist(q, s.vec(entry))
	st.DistComps++
	ctx.visit(entry)
	frontier.PushMin(int64(entry), d)
	if keep(s.ids[entry]) {
		results.Push(int64(entry), d)
	}

	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range g.neighbors(s, uint32(c.ID), l) {
			if !ctx.visit(nb) {
				continue
			}
			dn := g.dist(q, s.vec(nb))
			st.DistComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				if keep(s.ids[nb]) {
					results.Push(int64(nb), dn)
				}
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}
