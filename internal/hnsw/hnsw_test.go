package hnsw

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topk"
	"repro/internal/vec"
)

func clusteredData(rng *rand.Rand, n, dim, clusters int) *vec.Dataset {
	centers := make([][]float32, clusters)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64() * 10)
		}
	}
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := centers[i%clusters]
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func bruteKNN(ds *vec.Dataset, q []float32, k int) []topk.Result {
	c := topk.New(k)
	for i := 0; i < ds.Len(); i++ {
		c.Push(ds.ID(i), vec.L2Distance(q, ds.At(i)))
	}
	return c.Results()
}

func recallOf(got, want []topk.Result) float64 {
	truth := make(map[int64]bool, len(want))
	for _, r := range want {
		truth[r.ID] = true
	}
	hit := 0
	for _, r := range got {
		if truth[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestEmptyAndErrors(t *testing.T) {
	g, err := New(4, DefaultConfig(vec.L2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Search(make([]float32, 4), 3); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := g.Add(make([]float32, 3), 0); err == nil {
		t.Error("want dim error on Add")
	}
	if _, err := g.Add(make([]float32, 4), 0); err != nil {
		t.Error(err)
	}
	if _, _, err := g.Search(make([]float32, 3), 1); err == nil {
		t.Error("want dim error on Search")
	}
	if _, err := New(4, Config{M: 1}); err == nil {
		t.Error("want config error for M=1")
	}
}

func TestSingleAndFewPoints(t *testing.T) {
	g, _ := New(2, DefaultConfig(vec.L2))
	g.Add([]float32{0, 0}, 42)
	rs, _, err := g.Search([]float32{1, 1}, 5)
	if err != nil || len(rs) != 1 || rs[0].ID != 42 {
		t.Fatalf("rs=%v err=%v", rs, err)
	}
	g.Add([]float32{10, 10}, 43)
	rs, _, _ = g.Search([]float32{9, 9}, 1)
	if rs[0].ID != 43 {
		t.Errorf("nearest = %+v, want 43", rs[0])
	}
}

func TestExactOnSmallSet(t *testing.T) {
	// With ef >= n the beam search degenerates to exhaustive search and
	// must return the exact answer.
	rng := rand.New(rand.NewSource(7))
	ds := clusteredData(rng, 200, 16, 4)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := ds.At(rng.Intn(ds.Len()))
		got, _, _ := g.SearchEf(q, 5, 400)
		want := bruteKNN(ds, q, 5)
		if r := recallOf(got, want); r < 0.999 {
			t.Fatalf("trial %d recall %v\n got %v\nwant %v", trial, r, got, want)
		}
	}
}

func TestRecallFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := clusteredData(rng, 3000, 32, 8)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	trials := 50
	for i := 0; i < trials; i++ {
		q := make([]float32, 32)
		base := ds.At(rng.Intn(ds.Len()))
		for j := range q {
			q[j] = base[j] + float32(rng.NormFloat64()*0.1)
		}
		got, _, _ := g.SearchEf(q, 10, 128)
		sum += recallOf(got, bruteKNN(ds, q, 10))
	}
	if avg := sum / float64(trials); avg < 0.9 {
		t.Errorf("average recall %v < 0.9", avg)
	}
}

func TestDistancesAreTrueL2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := clusteredData(rng, 100, 8, 2)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 1)
	q := ds.At(0)
	got, _, _ := g.SearchEf(q, 3, 100)
	for _, r := range got {
		// find the row and check the reported distance
		for i := 0; i < ds.Len(); i++ {
			if ds.ID(i) == r.ID {
				want := vec.L2Distance(q, ds.At(i))
				if diff := want - r.Dist; diff > 1e-4 || diff < -1e-4 {
					t.Errorf("dist %v want %v", r.Dist, want)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := clusteredData(rng, 500, 16, 4)
	g, bst, _ := Build(ds, DefaultConfig(vec.L2), 1)
	if bst.DistComps == 0 {
		t.Error("build stats should record distance computations")
	}
	_, st, _ := g.Search(ds.At(0), 5)
	if st.DistComps == 0 || st.Hops == 0 {
		t.Errorf("search stats empty: %+v", st)
	}
	if got := (Stats{1, 2, 5, 7}).Add(Stats{3, 4, 6, 8}); got != (Stats{4, 6, 11, 15}) {
		t.Errorf("Stats.Add = %+v", got)
	}
}

func TestConcurrentBuildMatchesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := clusteredData(rng, 2000, 24, 6)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != ds.Len() {
		t.Fatalf("Len = %d want %d", g.Len(), ds.Len())
	}
	sum := 0.0
	for i := 0; i < 30; i++ {
		q := ds.At(rng.Intn(ds.Len()))
		got, _, _ := g.SearchEf(q, 10, 128)
		sum += recallOf(got, bruteKNN(ds, q, 10))
	}
	if avg := sum / 30; avg < 0.85 {
		t.Errorf("concurrent-build recall %v < 0.85", avg)
	}
}

func TestConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := clusteredData(rng, 1000, 16, 4)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 2)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := ds.At(r.Intn(ds.Len()))
				if _, _, err := g.Search(q, 5); err != nil {
					t.Error(err)
				}
			}
			done <- true
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestDegreeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := clusteredData(rng, 1500, 16, 3)
	cfg := DefaultConfig(vec.L2)
	cfg.M = 8
	g, _, _ := Build(ds, cfg, 1)
	for i, n := range g.nodes {
		for l, ls := range n.links {
			bound := g.cfg.Mmax
			if l == 0 {
				bound = g.cfg.Mmax0
			}
			if len(ls) > bound {
				t.Fatalf("node %d layer %d degree %d > bound %d", i, l, len(ls), bound)
			}
			for _, to := range ls {
				if int(to) >= g.Len() {
					t.Fatalf("node %d layer %d dangling link %d", i, l, to)
				}
			}
		}
	}
}

// Property: every search result ID is a real dataset ID and results are
// sorted ascending by distance.
func TestSearchInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds := clusteredData(rng, 400, 8, 4)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 1)
	valid := make(map[int64]bool)
	for i := 0; i < ds.Len(); i++ {
		valid[ds.ID(i)] = true
	}
	err := quick.Check(func(qx [8]float32, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		rs, _, err := g.Search(qx[:], k)
		if err != nil || len(rs) > k {
			return false
		}
		for i, r := range rs {
			if !valid[r.ID] {
				return false
			}
			if i > 0 && r.Dist < rs[i-1].Dist {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ds := clusteredData(rng, 600, 16, 4)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 1)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.MaxLevel() != g.MaxLevel() {
		t.Fatalf("shape: %d/%d vs %d/%d", g2.Len(), g2.MaxLevel(), g.Len(), g.MaxLevel())
	}
	// identical graphs must answer identically
	for i := 0; i < 20; i++ {
		q := ds.At(rng.Intn(ds.Len()))
		a, _, _ := g.SearchEf(q, 5, 64)
		b, _, _ := g2.SearchEf(q, 5, 64)
		if len(a) != len(b) {
			t.Fatalf("result count differs")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("result %d differs: %+v vs %+v", j, a[j], b[j])
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("HNSW\xff\xff\xff\xff"))); err == nil {
		t.Error("want error for bad version")
	}
}

func TestStructureStats(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ds := clusteredData(rng, 800, 16, 4)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 1)
	s := g.Structure()
	if s.Nodes != 800 || s.Edges == 0 || s.AvgDegree <= 0 {
		t.Errorf("structure: %+v", s)
	}
}

func TestHeuristicVsSimpleSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := clusteredData(rng, 1200, 24, 6)
	for _, heuristic := range []bool{true, false} {
		cfg := DefaultConfig(vec.L2)
		cfg.Heuristic = heuristic
		g, _, err := Build(ds, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < 20; i++ {
			q := ds.At(rng.Intn(ds.Len()))
			got, _, _ := g.SearchEf(q, 10, 100)
			sum += recallOf(got, bruteKNN(ds, q, 10))
		}
		if avg := sum / 20; avg < 0.8 {
			t.Errorf("heuristic=%v recall %v < 0.8", heuristic, avg)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	g, _ := New(2, DefaultConfig(vec.L2))
	for i := 0; i < 50; i++ {
		if _, err := g.Add([]float32{1, 1}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rs, _, err := g.SearchEf([]float32{1, 1}, 10, 64)
	if err != nil || len(rs) != 10 {
		t.Fatalf("rs=%d err=%v", len(rs), err)
	}
	for _, r := range rs {
		if r.Dist != 0 {
			t.Errorf("duplicate point distance %v != 0", r.Dist)
		}
	}
}

func TestSetEfSearch(t *testing.T) {
	g, _ := New(2, DefaultConfig(vec.L2))
	g.SetEfSearch(99)
	if g.Config().EfSearch != 99 {
		t.Error("SetEfSearch ignored")
	}
	g.SetEfSearch(-1)
	if g.Config().EfSearch != 99 {
		t.Error("negative ef should be ignored")
	}
}

func TestAddAllDimMismatch(t *testing.T) {
	g, _ := New(4, DefaultConfig(vec.L2))
	bad := vec.NewDataset(3, 1)
	bad.Append([]float32{1, 2, 3}, 0)
	if _, err := g.AddAll(bad, 1); err == nil {
		t.Error("want dim error")
	}
}

func BenchmarkBuild1kDim32(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	ds := clusteredData(rng, 1000, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(ds, DefaultConfig(vec.L2), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchDim128(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	ds := clusteredData(rng, 10000, 128, 8)
	g, _, _ := Build(ds, DefaultConfig(vec.L2), 4)
	q := ds.At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(q, 10)
	}
}

// NSW mode (Flat=true) must stay a correct approximate index while
// spending more hops at scale — the motivation for the hierarchy.
func TestFlatNSWRecallAndHopGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	build := func(n int, flat bool) *Graph {
		ds := clusteredData(rng, n, 24, 6)
		cfg := DefaultConfig(vec.L2)
		cfg.Flat = flat
		g, _, err := Build(ds, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := build(2000, true)
	if g.MaxLevel() != 0 {
		t.Fatalf("flat graph has %d levels", g.MaxLevel())
	}
	sum := 0.0
	ds := g.Data()
	for i := 0; i < 30; i++ {
		q := ds.At(rng.Intn(ds.Len()))
		got, _, _ := g.SearchEf(q, 10, 128)
		sum += recallOf(got, bruteKNN(ds, q, 10))
	}
	if avg := sum / 30; avg < 0.85 {
		t.Errorf("flat NSW recall %v", avg)
	}
}

func TestHierarchyReducesDescentWork(t *testing.T) {
	// On the same data, HNSW's upper-layer descent should not cost more
	// total hops than flat NSW's long greedy walk from a random-ish
	// entry point; measure layer-0-equivalent hops on a far query.
	rng := rand.New(rand.NewSource(31))
	ds := clusteredData(rng, 6000, 16, 1)
	flatCfg := DefaultConfig(vec.L2)
	flatCfg.Flat = true
	gFlat, _, _ := Build(ds, flatCfg, 1)
	gHier, _, _ := Build(ds, DefaultConfig(vec.L2), 1)
	var flatHops, hierHops int64
	for i := 0; i < 40; i++ {
		q := ds.At(rng.Intn(ds.Len()))
		_, sf, _ := gFlat.SearchEf(q, 10, 32)
		_, sh, _ := gHier.SearchEf(q, 10, 32)
		flatHops += sf.Hops
		hierHops += sh.Hops
	}
	// the hierarchy should not be substantially worse; typically better
	if hierHops > flatHops*2 {
		t.Errorf("hierarchy hops %d >> flat hops %d", hierHops, flatHops)
	}
}
