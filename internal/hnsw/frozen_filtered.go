package hnsw

import (
	"fmt"
	"math"

	"repro/internal/topk"
	"repro/internal/vec"
)

// SearchFiltered returns the approximate k nearest matching neighbors
// using the beam width and re-rank budget fixed at freeze time.
// keep==nil degrades to an unfiltered search.
func (f *Frozen) SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	return f.SearchEfFiltered(q, k, f.efSearch, f.rerankK, keep)
}

// SearchEfFiltered is the filter-pushdown variant of Frozen.SearchEf:
// the predicate gates admission into the result set during traversal
// while the frontier keeps expanding through non-matching rows, exactly
// mirroring Graph.SearchEfFiltered on the dynamic path. On the
// quantized path the first pass collects matching candidates by SQ8
// score and the top re-rank budget of them is re-scored at full
// precision — non-matching rows never occupy re-rank slots.
func (f *Frozen) SearchEfFiltered(q []float32, k, ef, rerankK int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	if keep == nil {
		return f.SearchEf(q, k, ef, rerankK)
	}
	if len(f.ids) == 0 {
		return nil, Stats{}, ErrEmpty
	}
	if len(q) != f.dim {
		return nil, Stats{}, fmt.Errorf("hnsw: query dim %d, index dim %d", len(q), f.dim)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("hnsw: non-positive k %d", k)
	}
	if ef < k {
		ef = k
	}
	var st Stats
	quant := f.codec != nil && rerankK >= 0
	if !quant {
		cands := f.searchFloatFiltered(q, ef, &st, keep)
		if len(cands) > k {
			cands = cands[:k]
		}
		return f.report(cands), st, nil
	}

	qc := make([]uint8, f.dim)
	if err := f.codec.Encode(q, qc); err != nil {
		return nil, st, err
	}
	rr := rerankK
	if rr == 0 {
		rr = 4 * k
	}
	if rr < k {
		rr = k
	}
	cands := f.searchBytesFiltered(qc, ef, &st, keep)
	if len(cands) > rr {
		cands = cands[:rr]
	}
	col := topk.New(k)
	for _, c := range cands {
		col.Push(int64(c.id), f.dist(q, f.vec(c.id)))
	}
	st.DistComps += int64(len(cands))
	st.Reranked += int64(len(cands))
	rs := col.Results()
	out := make([]topk.Result, len(rs))
	for i, r := range rs {
		d := r.Dist
		if f.sqrtL {
			d = float32(math.Sqrt(float64(d)))
		}
		out[i] = topk.Result{ID: f.ids[r.ID], Dist: d}
	}
	return out, st, nil
}

// searchFloatFiltered is searchFloat with the result collector gated on
// keep. The upper-layer greedy descent stays unfiltered — it only
// routes the beam to the right region.
func (f *Frozen) searchFloatFiltered(q []float32, ef int, st *Stats, keep func(int64) bool) []cand {
	cur := f.entry
	curDist := f.dist(q, f.vec(cur))
	st.DistComps++
	for l := f.maxLevel; l >= 1; l-- {
		for changed := true; changed; {
			changed = false
			st.Hops++
			for _, nb := range f.neighbors(l, cur) {
				d := f.dist(q, f.vec(nb))
				st.DistComps++
				if d < curDist {
					curDist, cur = d, nb
					changed = true
				}
			}
		}
	}
	ctx := ctxPool.Get().(*searchCtx)
	defer ctxPool.Put(ctx)
	ctx.reset(len(f.ids))
	var frontier topk.MinQueue
	results := topk.New(ef)
	curDist = f.dist(q, f.vec(cur))
	st.DistComps++
	ctx.visit(cur)
	frontier.PushMin(int64(cur), curDist)
	if keep(f.ids[cur]) {
		results.Push(int64(cur), curDist)
	}
	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range f.neighbors(0, uint32(c.ID)) {
			if !ctx.visit(nb) {
				continue
			}
			dn := f.dist(q, f.vec(nb))
			st.DistComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				if keep(f.ids[nb]) {
					results.Push(int64(nb), dn)
				}
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}

// searchBytesFiltered is searchBytes with the result collector gated on
// keep: the SQ8 first pass only spends result (and later re-rank) slots
// on matching rows.
func (f *Frozen) searchBytesFiltered(qc []uint8, ef int, st *Stats, keep func(int64) bool) []cand {
	cur := f.entry
	curDist := float32(vec.SquaredL2Bytes(qc, f.code(cur)))
	st.QuantComps++
	for l := f.maxLevel; l >= 1; l-- {
		for changed := true; changed; {
			changed = false
			st.Hops++
			for _, nb := range f.neighbors(l, cur) {
				d := float32(vec.SquaredL2Bytes(qc, f.code(nb)))
				st.QuantComps++
				if d < curDist {
					curDist, cur = d, nb
					changed = true
				}
			}
		}
	}
	ctx := ctxPool.Get().(*searchCtx)
	defer ctxPool.Put(ctx)
	ctx.reset(len(f.ids))
	var frontier topk.MinQueue
	results := topk.New(ef)
	curDist = float32(vec.SquaredL2Bytes(qc, f.code(cur)))
	st.QuantComps++
	ctx.visit(cur)
	frontier.PushMin(int64(cur), curDist)
	if keep(f.ids[cur]) {
		results.Push(int64(cur), curDist)
	}
	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range f.neighbors(0, uint32(c.ID)) {
			if !ctx.visit(nb) {
				continue
			}
			dn := float32(vec.SquaredL2Bytes(qc, f.code(nb)))
			st.QuantComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				if keep(f.ids[nb]) {
					results.Push(int64(nb), dn)
				}
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}
