// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, TPAMI 2018), the sequential approximate k-NN index
// the paper uses to search inside each data partition.
//
// The implementation follows the reference algorithms of the paper:
//
//   - exponentially distributed level assignment (skip-list style
//     promotion, Section III-A of the CLUSTER paper);
//   - greedy descent through the upper layers (Algorithm 2, ef=1);
//   - beam search with dynamic candidate list of width ef on the target
//     layers (Algorithm 2);
//   - neighbor selection by the diversity heuristic with the
//     keepPrunedConnections extension (Algorithm 4);
//   - bidirectional linking with per-layer degree bounds M / Mmax / Mmax0.
//
// Index construction is safe for concurrent Add calls, mirroring the
// multi-threaded OpenMP build in the paper. Concurrency is handled with a
// snapshot discipline: every operation captures the node and vector slice
// headers under a short RWMutex section and then works lock-free against
// that snapshot, ignoring nodes that were appended afterwards (they will
// be wired up by their own inserts). Per-node mutexes guard neighbor
// lists.
package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Config holds the HNSW construction and search parameters.
type Config struct {
	// M is the number of links created for a new node per layer; the
	// paper sweeps M over {8,16,32,64} in Figure 6. Default 16.
	M int
	// Mmax0 bounds the degree on layer 0 (default 2*M); Mmax bounds the
	// degree on the upper layers (default M).
	Mmax0 int
	Mmax  int
	// EfConstruction is the beam width used while building (default 200).
	EfConstruction int
	// EfSearch is the default beam width for queries (default 64); Search
	// always uses max(EfSearch, k).
	EfSearch int
	// Metric selects the distance. L2 is evaluated as squared L2
	// internally (ordering-equivalent) with distances fixed up on return.
	Metric vec.Metric
	// Seed seeds level assignment; builds with equal seeds and a serial
	// insertion order are reproducible.
	Seed int64
	// LevelMult is the level-assignment multiplier; 0 means 1/ln(M).
	LevelMult float64
	// KeepPruned enables the keepPrunedConnections extension of the
	// neighbor-selection heuristic (on by default via DefaultConfig).
	KeepPruned bool
	// Heuristic selects diversity-based neighbor selection (Algorithm 4)
	// instead of the simple closest-M rule. The ablation benchmark
	// toggles this.
	Heuristic bool
	// Flat disables the layer hierarchy, turning the index into a plain
	// Navigable Small World graph (Malkov et al. 2014) — the
	// predecessor design whose O(log^2 n) search the hierarchy improves
	// to O(log n) (Section III-A of the CLUSTER paper). The nsw
	// comparison benchmark toggles this.
	Flat bool
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments (M=16 default, heuristic selection on).
func DefaultConfig(metric vec.Metric) Config {
	return Config{
		M:              16,
		EfConstruction: 200,
		EfSearch:       64,
		Metric:         metric,
		Seed:           1,
		KeepPruned:     true,
		Heuristic:      true,
	}
}

func (c *Config) fill() error {
	if c.M <= 1 {
		return fmt.Errorf("hnsw: M must be >1, got %d", c.M)
	}
	if c.Mmax == 0 {
		c.Mmax = c.M
	}
	if c.Mmax0 == 0 {
		c.Mmax0 = 2 * c.M
	}
	if c.EfConstruction < c.M {
		c.EfConstruction = 2 * c.M
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	if c.LevelMult == 0 {
		c.LevelMult = 1 / math.Log(float64(c.M))
	}
	return nil
}

// node is one graph vertex. links[l] holds the neighbor node indices at
// layer l; len(links) == level+1.
type node struct {
	mu    sync.Mutex
	links [][]uint32
}

// Graph is an HNSW index over an internally owned vec.Dataset. Node i of
// the graph is row i of the dataset; results are reported with the rows'
// global IDs.
type Graph struct {
	cfg   Config
	dist  vec.DistFunc
	sqrtL bool // report sqrt of internal distance (L2 via SquaredL2)

	// epMu guards data, nodes, entry, maxLevel and empty. Operations copy
	// the slice headers under the lock and then run lock-free against the
	// copies.
	epMu     sync.RWMutex
	data     *vec.Dataset
	nodes    []*node
	entry    uint32
	maxLevel int
	empty    bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

// snap is an immutable view of the graph as of some moment: the first
// len(nodes) vertices and their vectors. Slice contents only ever grow,
// so rows < len(nodes) are stable.
type snap struct {
	dim   int
	data  []float32
	ids   []int64
	nodes []*node
	entry uint32
	maxL  int
}

func (s *snap) vec(i uint32) []float32 {
	return s.data[int(i)*s.dim : (int(i)+1)*s.dim]
}

// Stats reports the work performed by one search or accumulated over a
// build; the distributed cost model consumes these.
type Stats struct {
	DistComps  int64 // number of full-precision distance evaluations
	Hops       int64 // number of graph expansions (nodes popped)
	QuantComps int64 // number of quantized (SQ8) distance evaluations
	Reranked   int64 // candidates re-ranked at full precision
}

// Add combines two stats values.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		DistComps:  s.DistComps + o.DistComps,
		Hops:       s.Hops + o.Hops,
		QuantComps: s.QuantComps + o.QuantComps,
		Reranked:   s.Reranked + o.Reranked,
	}
}

// New creates an empty index of the given dimension.
func New(dim int, cfg Config) (*Graph, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("hnsw: non-positive dimension %d", dim)
	}
	g := &Graph{
		cfg:   cfg,
		data:  vec.NewDataset(dim, 0),
		empty: true,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	switch cfg.Metric {
	case vec.L2:
		g.dist = vec.SquaredL2Distance
		g.sqrtL = true
	default:
		g.dist = cfg.Metric.Func()
	}
	return g, nil
}

// Build constructs an index over ds using nThreads concurrent inserters
// (nThreads<=1 builds serially and reproducibly). ds is copied.
func Build(ds *vec.Dataset, cfg Config, nThreads int) (*Graph, Stats, error) {
	g, err := New(ds.Dim, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := g.AddAll(ds, nThreads)
	return g, st, err
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int {
	g.epMu.RLock()
	defer g.epMu.RUnlock()
	return g.data.Len()
}

// Dim returns the vector dimension.
func (g *Graph) Dim() int { return g.data.Dim }

// Config returns the (filled-in) configuration.
func (g *Graph) Config() Config { return g.cfg }

// SetEfSearch changes the default query beam width.
func (g *Graph) SetEfSearch(ef int) {
	if ef > 0 {
		g.cfg.EfSearch = ef
	}
}

// Data exposes the underlying dataset. Callers must not mutate it and
// must not call Data concurrently with Add.
func (g *Graph) Data() *vec.Dataset { return g.data }

// DataSnapshot returns a point-in-time view of the indexed vectors that
// is safe to read concurrently with Add: the slice headers are captured
// under the lock, and committed rows are never moved by later appends.
// Callers must not mutate the view.
func (g *Graph) DataSnapshot() *vec.Dataset {
	g.epMu.RLock()
	defer g.epMu.RUnlock()
	n := g.data.Len()
	return &vec.Dataset{
		Dim:  g.data.Dim,
		Data: g.data.Data[: n*g.data.Dim : n*g.data.Dim],
		IDs:  g.data.IDs[:n:n],
	}
}

// EfSearch returns the current default query beam width.
func (g *Graph) EfSearch() int { return g.cfg.EfSearch }

func (g *Graph) randomLevel() int {
	if g.cfg.Flat {
		return 0 // plain NSW: every node lives on the single layer
	}
	g.rngMu.Lock()
	u := g.rng.Float64()
	g.rngMu.Unlock()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(-math.Log(u) * g.cfg.LevelMult))
}

func (g *Graph) snapshotLocked() snap {
	return snap{
		dim:   g.data.Dim,
		data:  g.data.Data,
		ids:   g.data.IDs,
		nodes: g.nodes,
		entry: g.entry,
		maxL:  g.maxLevel,
	}
}

// Add inserts one vector with the given global ID and returns the work
// performed. It is safe for concurrent use.
func (g *Graph) Add(v []float32, id int64) (Stats, error) {
	return g.AddAtLevel(v, id, g.NextLevel())
}

// NextLevel draws the level the next insert would be assigned from the
// index's seeded generator, without inserting. Durable ingestion draws
// the level first, logs it, and then calls AddAtLevel, so that replaying
// the log reproduces a structurally identical graph.
func (g *Graph) NextLevel() int { return g.randomLevel() }

// AddAtLevel inserts one vector at a caller-chosen level. It is the
// replay half of the NextLevel/AddAtLevel pair; levels recorded in a
// write-ahead log feed back through here so recovery is deterministic.
func (g *Graph) AddAtLevel(v []float32, id int64, level int) (Stats, error) {
	if len(v) != g.data.Dim {
		return Stats{}, fmt.Errorf("hnsw: vector dim %d, index dim %d", len(v), g.data.Dim)
	}
	if level < 0 {
		return Stats{}, fmt.Errorf("hnsw: negative level %d", level)
	}
	if g.cfg.Flat {
		level = 0
	}

	// Claim a node slot and capture a snapshot that includes it.
	g.epMu.Lock()
	idx := uint32(g.data.Len())
	g.data.Append(v, id)
	n := &node{links: make([][]uint32, level+1)}
	g.nodes = append(g.nodes, n)
	if g.empty {
		g.entry = idx
		g.maxLevel = level
		g.empty = false
		g.epMu.Unlock()
		return Stats{}, nil
	}
	s := g.snapshotLocked()
	g.epMu.Unlock()

	var st Stats
	ctx := ctxPool.Get().(*searchCtx)
	defer ctxPool.Put(ctx)
	q := s.vec(idx)

	// Greedy descent with ef=1 through layers above the node's level.
	cur := s.entry
	curDist := g.dist(q, s.vec(cur))
	st.DistComps++
	for l := s.maxL; l > level; l-- {
		cur, curDist = g.greedyStep(&s, q, cur, curDist, l, &st)
	}

	// Beam search and linking on layers min(level,maxL)..0.
	for l := min(level, s.maxL); l >= 0; l-- {
		cands := g.searchLayer(&s, q, cur, g.cfg.EfConstruction, l, ctx, &st)
		// Drop self if discovered through a concurrent back-link.
		for i, c := range cands {
			if c.id == idx {
				cands = append(cands[:i], cands[i+1:]...)
				break
			}
		}
		selected := g.selectNeighbors(&s, q, cands, g.cfg.M, &st)
		n.mu.Lock()
		n.links[l] = append(n.links[l][:0], selected...)
		n.mu.Unlock()
		for _, nb := range selected {
			g.linkBack(&s, nb, idx, l, &st)
		}
		if len(cands) > 0 {
			cur = cands[0].id
		}
	}

	if level > s.maxL {
		g.epMu.Lock()
		if level > g.maxLevel {
			g.maxLevel = level
			g.entry = idx
		}
		g.epMu.Unlock()
	}
	return st, nil
}

// greedyStep walks greedily at layer l until no neighbor improves.
func (g *Graph) greedyStep(s *snap, q []float32, cur uint32, curDist float32, l int, st *Stats) (uint32, float32) {
	for changed := true; changed; {
		changed = false
		st.Hops++
		for _, nb := range g.neighbors(s, cur, l) {
			d := g.dist(q, s.vec(nb))
			st.DistComps++
			if d < curDist {
				curDist, cur = d, nb
				changed = true
			}
		}
	}
	return cur, curDist
}

// AddAll inserts every row of ds using nThreads workers.
func (g *Graph) AddAll(ds *vec.Dataset, nThreads int) (Stats, error) {
	if ds.Dim != g.data.Dim {
		return Stats{}, fmt.Errorf("hnsw: dataset dim %d, index dim %d", ds.Dim, g.data.Dim)
	}
	if nThreads <= 1 {
		var total Stats
		for i := 0; i < ds.Len(); i++ {
			st, err := g.Add(ds.At(i), ds.ID(i))
			if err != nil {
				return total, err
			}
			total = total.Add(st)
		}
		return total, nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total Stats
		first error
	)
	work := make(chan int, nThreads*4)
	for w := 0; w < nThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Stats
			for i := range work {
				st, err := g.Add(ds.At(i), ds.ID(i))
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					continue
				}
				local = local.Add(st)
			}
			mu.Lock()
			total = total.Add(local)
			mu.Unlock()
		}()
	}
	for i := 0; i < ds.Len(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return total, first
}

// neighbors returns a copy of the links of node u at layer l, restricted
// to nodes that exist in the snapshot.
func (g *Graph) neighbors(s *snap, u uint32, l int) []uint32 {
	n := s.nodes[u]
	n.mu.Lock()
	var out []uint32
	if l < len(n.links) {
		for _, x := range n.links[l] {
			if int(x) < len(s.nodes) {
				out = append(out, x)
			}
		}
	}
	n.mu.Unlock()
	return out
}

// linkBack adds "to" into the neighbor list of u at layer l, shrinking
// with the selection rule if the degree bound is exceeded.
func (g *Graph) linkBack(s *snap, u, to uint32, l int, st *Stats) {
	bound := g.cfg.Mmax
	if l == 0 {
		bound = g.cfg.Mmax0
	}
	n := s.nodes[u]
	n.mu.Lock()
	defer n.mu.Unlock()
	if l >= len(n.links) {
		return
	}
	for _, x := range n.links[l] {
		if x == to {
			return
		}
	}
	if len(n.links[l]) < bound {
		n.links[l] = append(n.links[l], to)
		return
	}
	// Over-full: re-select among current neighbors + the new one. Links
	// may reference nodes newer than our snapshot; their vectors are
	// nevertheless stable (appends never move committed rows), but we
	// must read them through the owner's current data. Restrict to the
	// snapshot for safety; newer links are kept unconditionally.
	base := s.vec(u)
	cands := make([]cand, 0, len(n.links[l])+1)
	var newer []uint32
	for _, x := range n.links[l] {
		if int(x) >= len(s.nodes) {
			newer = append(newer, x)
			continue
		}
		cands = append(cands, cand{x, g.dist(base, s.vec(x))})
		st.DistComps++
	}
	cands = append(cands, cand{to, g.dist(base, s.vec(to))})
	st.DistComps++
	sortCands(cands)
	keep := bound - len(newer)
	if keep < 1 {
		keep = 1
	}
	sel := g.selectNeighborsBase(s, base, cands, keep, st)
	n.links[l] = append(sel, newer...)
}

type cand struct {
	id   uint32
	dist float32
}

func sortCands(cs []cand) {
	// insertion sort: candidate lists are short (<= ef or Mmax+1)
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && (cs[j].dist > c.dist || (cs[j].dist == c.dist && cs[j].id > c.id)) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// selectNeighbors picks up to m nodes from the sorted candidate list,
// judged against query point q.
func (g *Graph) selectNeighbors(s *snap, q []float32, cands []cand, m int, st *Stats) []uint32 {
	return g.selectNeighborsBase(s, q, cands, m, st)
}

func (g *Graph) selectNeighborsBase(s *snap, base []float32, cands []cand, m int, st *Stats) []uint32 {
	if !g.cfg.Heuristic {
		out := make([]uint32, 0, m)
		for _, c := range cands {
			if len(out) == m {
				break
			}
			out = append(out, c.id)
		}
		return out
	}
	return g.selectHeuristic(s, cands, m, st)
}

// selectHeuristic is Algorithm 4 of Malkov & Yashunin: keep a candidate
// only if it is closer to the query than to every already-kept neighbor,
// which spreads links across directions; optionally backfill with the
// pruned candidates.
func (g *Graph) selectHeuristic(s *snap, cands []cand, m int, st *Stats) []uint32 {
	kept := make([]cand, 0, m)
	var pruned []cand
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		ok := true
		cv := s.vec(c.id)
		for _, k := range kept {
			st.DistComps++
			if g.dist(cv, s.vec(k.id)) < c.dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		} else if g.cfg.KeepPruned {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(kept) == m {
			break
		}
		kept = append(kept, c)
	}
	out := make([]uint32, len(kept))
	for i, c := range kept {
		out[i] = c.id
	}
	return out
}

// searchCtx holds the per-search visited-set, reused across searches via
// a pool; the epoch trick avoids clearing the array between searches.
type searchCtx struct {
	visited []uint32
	epoch   uint32
}

func (c *searchCtx) reset(n int) {
	if len(c.visited) < n {
		c.visited = append(c.visited, make([]uint32, n-len(c.visited))...)
	}
	c.epoch++
	if c.epoch == 0 { // wrapped: clear
		for i := range c.visited {
			c.visited[i] = 0
		}
		c.epoch = 1
	}
}

func (c *searchCtx) visit(u uint32) bool {
	if c.visited[u] == c.epoch {
		return false
	}
	c.visited[u] = c.epoch
	return true
}

var ctxPool = sync.Pool{New: func() any { return &searchCtx{} }}

// searchLayer is Algorithm 2: beam search of width ef on one layer,
// returning up to ef candidates sorted by ascending distance.
func (g *Graph) searchLayer(s *snap, q []float32, entry uint32, ef, l int, ctx *searchCtx, st *Stats) []cand {
	ctx.reset(len(s.nodes))
	var frontier topk.MinQueue
	results := topk.New(ef)

	d := g.dist(q, s.vec(entry))
	st.DistComps++
	ctx.visit(entry)
	frontier.PushMin(int64(entry), d)
	results.Push(int64(entry), d)

	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range g.neighbors(s, uint32(c.ID), l) {
			if !ctx.visit(nb) {
				continue
			}
			dn := g.dist(q, s.vec(nb))
			st.DistComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				results.Push(int64(nb), dn)
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}

// ErrEmpty is returned when searching an index with no vectors.
var ErrEmpty = errors.New("hnsw: empty index")

// Search returns the approximate k nearest neighbors of q using the
// configured EfSearch beam width.
func (g *Graph) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	return g.SearchEf(q, k, g.cfg.EfSearch)
}

// SearchEf returns the approximate k nearest neighbors using beam width
// max(ef, k). Results carry global IDs and distances in the configured
// metric (true L2, not squared).
func (g *Graph) SearchEf(q []float32, k, ef int) ([]topk.Result, Stats, error) {
	g.epMu.RLock()
	if g.empty {
		g.epMu.RUnlock()
		return nil, Stats{}, ErrEmpty
	}
	s := g.snapshotLocked()
	g.epMu.RUnlock()

	if len(q) != s.dim {
		return nil, Stats{}, fmt.Errorf("hnsw: query dim %d, index dim %d", len(q), s.dim)
	}
	if ef < k {
		ef = k
	}
	var st Stats
	cur := s.entry
	curDist := g.dist(q, s.vec(cur))
	st.DistComps++
	for l := s.maxL; l >= 1; l-- {
		cur, curDist = g.greedyStep(&s, q, cur, curDist, l, &st)
	}

	ctx := ctxPool.Get().(*searchCtx)
	cands := g.searchLayer(&s, q, cur, ef, 0, ctx, &st)
	ctxPool.Put(ctx)

	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]topk.Result, len(cands))
	for i, c := range cands {
		d := c.dist
		if g.sqrtL {
			d = float32(math.Sqrt(float64(d)))
		}
		out[i] = topk.Result{ID: s.ids[c.id], Dist: d}
	}
	return out, st, nil
}

// MaxLevel returns the current top layer of the hierarchy.
func (g *Graph) MaxLevel() int {
	g.epMu.RLock()
	defer g.epMu.RUnlock()
	return g.maxLevel
}

// GraphStats summarises the structure of the index.
type GraphStats struct {
	Nodes     int
	MaxLevel  int
	Edges     int64   // directed edges over all layers
	AvgDegree float64 // layer-0 average out-degree
}

// Structure computes structural statistics; O(nodes + edges).
func (g *Graph) Structure() GraphStats {
	g.epMu.RLock()
	nodes := g.nodes
	maxL := g.maxLevel
	g.epMu.RUnlock()
	gs := GraphStats{Nodes: len(nodes), MaxLevel: maxL}
	var deg0 int64
	for _, n := range nodes {
		n.mu.Lock()
		for l, ls := range n.links {
			gs.Edges += int64(len(ls))
			if l == 0 {
				deg0 += int64(len(ls))
			}
		}
		n.mu.Unlock()
	}
	if gs.Nodes > 0 {
		gs.AvgDegree = float64(deg0) / float64(gs.Nodes)
	}
	return gs
}
