package hnsw

import (
	"fmt"
	"math"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Frozen is the flat, read-only serving layout of a Graph: one
// contiguous vector arena, per-layer adjacency in CSR form (an offsets
// slab plus one neighbor slab — no per-node allocations, no pointers,
// no locks on the hot path), and optionally an SQ8 code slab used for
// quantized candidate generation with exact float32 re-ranking.
//
// A Frozen is an immutable snapshot: it is built once by Graph.Freeze
// and never mutated, so any number of goroutines may search it
// concurrently without synchronisation. Writes keep going to the
// dynamic Graph; the serving layer re-freezes when the delta grows or a
// partition is swapped (see internal/index.Freeze).
type Frozen struct {
	dim      int
	metric   vec.Metric
	dist     vec.DistFunc
	sqrtL    bool
	efSearch int
	rerankK  int

	ids   []int64   // n global IDs
	arena []float32 // n*dim full-precision vectors, row-major
	codes []uint8   // n*dim SQ8 codes, or nil when quantization is off
	codec *vec.SQ8

	// layers[l] is the adjacency of layer l in CSR form: the neighbors
	// of node u are nbr[off[u]:off[u+1]]. Nodes absent from a layer have
	// an empty range, so off has n+1 entries on every layer.
	layers   []csrLayer
	entry    uint32
	maxLevel int
}

type csrLayer struct {
	off []uint32
	nbr []uint32
}

// FreezeOptions tunes the frozen layout.
type FreezeOptions struct {
	// SQ8 enables scalar-quantized candidate generation. Requires an
	// L2-family metric (byte-domain distances rank other metrics
	// incorrectly); Freeze errors otherwise.
	SQ8 bool
	// RerankK is the default number of top quantized candidates
	// re-ranked at full precision per search: >0 uses that many, 0
	// picks 4*k at search time, and <0 means unbounded — every
	// candidate is scored at full precision, which disables quantized
	// scoring entirely and makes results bit-identical to the exact
	// float32 path.
	RerankK int
}

// Freeze lays the graph out flat for serving. The graph may keep
// receiving Add calls concurrently; the frozen view captures the rows
// committed at the time of the call and filters links that point past
// the snapshot.
func (g *Graph) Freeze(opts FreezeOptions) (*Frozen, error) {
	g.epMu.RLock()
	s := g.snapshotLocked()
	empty := g.empty
	g.epMu.RUnlock()

	n := len(s.nodes)
	f := &Frozen{
		dim:      s.dim,
		metric:   g.cfg.Metric,
		dist:     g.dist,
		sqrtL:    g.sqrtL,
		efSearch: g.cfg.EfSearch,
		rerankK:  opts.RerankK,
		entry:    s.entry,
		maxLevel: s.maxL,
	}
	if empty {
		n = 0
		f.maxLevel = 0
		f.entry = 0
	}
	f.ids = append([]int64(nil), s.ids[:n]...)
	f.arena = append([]float32(nil), s.data[:n*s.dim]...)

	// Adjacency: two passes per layer (count, then fill) so each layer
	// is exactly two allocations.
	f.layers = make([]csrLayer, f.maxLevel+1)
	links := make([][][]uint32, n) // per node: snapshot of its links
	for u := 0; u < n; u++ {
		nd := s.nodes[u]
		nd.mu.Lock()
		ls := make([][]uint32, len(nd.links))
		for l, lk := range nd.links {
			row := make([]uint32, 0, len(lk))
			for _, x := range lk {
				if int(x) < n {
					row = append(row, x)
				}
			}
			ls[l] = row
		}
		nd.mu.Unlock()
		links[u] = ls
	}
	for l := range f.layers {
		off := make([]uint32, n+1)
		total := uint32(0)
		for u := 0; u < n; u++ {
			off[u] = total
			if l < len(links[u]) {
				total += uint32(len(links[u][l]))
			}
		}
		off[n] = total
		nbr := make([]uint32, 0, total)
		for u := 0; u < n; u++ {
			if l < len(links[u]) {
				nbr = append(nbr, links[u][l]...)
			}
		}
		f.layers[l] = csrLayer{off: off, nbr: nbr}
	}

	if opts.SQ8 && n > 0 {
		if !g.cfg.Metric.Monotone() {
			return nil, fmt.Errorf("hnsw: SQ8 quantized scoring requires an L2-family metric, have %v", g.cfg.Metric)
		}
		ds := &vec.Dataset{Dim: f.dim, Data: f.arena, IDs: f.ids}
		codec, err := vec.TrainSQ8(ds)
		if err != nil {
			return nil, fmt.Errorf("hnsw: freeze: %w", err)
		}
		codes, err := codec.EncodeAll(ds)
		if err != nil {
			return nil, fmt.Errorf("hnsw: freeze: %w", err)
		}
		f.codec, f.codes = codec, codes
	}
	return f, nil
}

// Len returns the number of frozen vectors.
func (f *Frozen) Len() int { return len(f.ids) }

// Dim returns the vector dimension.
func (f *Frozen) Dim() int { return f.dim }

// MaxLevel returns the frozen hierarchy's top layer.
func (f *Frozen) MaxLevel() int { return f.maxLevel }

// Quantized reports whether the SQ8 first pass is available.
func (f *Frozen) Quantized() bool { return f.codec != nil }

// ID returns the global ID of row i.
func (f *Frozen) ID(i int) int64 { return f.ids[i] }

// Vector returns row i of the full-precision arena. Callers must not
// mutate it.
func (f *Frozen) Vector(i int) []float32 { return f.arena[i*f.dim : (i+1)*f.dim] }

// ArenaBytes returns the memory footprint of the frozen layout: vector
// arena, SQ8 codes, IDs, and adjacency slabs.
func (f *Frozen) ArenaBytes() int64 {
	b := int64(len(f.arena))*4 + int64(len(f.codes)) + int64(len(f.ids))*8
	for _, l := range f.layers {
		b += int64(len(l.off))*4 + int64(len(l.nbr))*4
	}
	if f.codec != nil {
		b += f.codec.Bytes()
	}
	return b
}

func (f *Frozen) neighbors(l int, u uint32) []uint32 {
	lay := &f.layers[l]
	return lay.nbr[lay.off[u]:lay.off[u+1]]
}

func (f *Frozen) vec(i uint32) []float32 {
	return f.arena[int(i)*f.dim : (int(i)+1)*f.dim]
}

func (f *Frozen) code(i uint32) []uint8 {
	return f.codes[int(i)*f.dim : (int(i)+1)*f.dim]
}

// Search returns the approximate k nearest neighbors using the beam
// width and re-rank budget fixed at freeze time.
func (f *Frozen) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	return f.SearchEf(q, k, f.efSearch, f.rerankK)
}

// SearchEf searches with an explicit beam width ef (clamped to >= k)
// and re-rank budget rerankK (see FreezeOptions.RerankK for the 0 and
// negative conventions). Results carry global IDs and exact
// full-precision distances in the configured metric.
func (f *Frozen) SearchEf(q []float32, k, ef, rerankK int) ([]topk.Result, Stats, error) {
	if len(f.ids) == 0 {
		return nil, Stats{}, ErrEmpty
	}
	if len(q) != f.dim {
		return nil, Stats{}, fmt.Errorf("hnsw: query dim %d, index dim %d", len(q), f.dim)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("hnsw: non-positive k %d", k)
	}
	if ef < k {
		ef = k
	}
	var st Stats
	quant := f.codec != nil && rerankK >= 0
	if !quant {
		// Exact path: float32 scoring end to end. Bit-identical to
		// Graph.SearchEf over the same snapshot (same traversal order,
		// same tie-breaking).
		cands := f.searchFloat(q, ef, &st)
		if len(cands) > k {
			cands = cands[:k]
		}
		return f.report(cands), st, nil
	}

	qc := make([]uint8, f.dim)
	if err := f.codec.Encode(q, qc); err != nil {
		return nil, st, err
	}
	rr := rerankK
	if rr == 0 {
		rr = 4 * k
	}
	if rr < k {
		rr = k
	}
	// Quantized first pass over the code slab...
	cands := f.searchBytes(qc, ef, &st)
	if len(cands) > rr {
		cands = cands[:rr]
	}
	// ...then exact re-rank of the survivors against the arena.
	col := topk.New(k)
	for _, c := range cands {
		col.Push(int64(c.id), f.dist(q, f.vec(c.id)))
	}
	st.DistComps += int64(len(cands))
	st.Reranked += int64(len(cands))
	rs := col.Results()
	out := make([]topk.Result, len(rs))
	for i, r := range rs {
		d := r.Dist
		if f.sqrtL {
			d = float32(math.Sqrt(float64(d)))
		}
		out[i] = topk.Result{ID: f.ids[r.ID], Dist: d}
	}
	return out, st, nil
}

// report converts internal candidates (exact internal-metric distances)
// into results with global IDs and user-metric distances.
func (f *Frozen) report(cands []cand) []topk.Result {
	out := make([]topk.Result, len(cands))
	for i, c := range cands {
		d := c.dist
		if f.sqrtL {
			d = float32(math.Sqrt(float64(d)))
		}
		out[i] = topk.Result{ID: f.ids[c.id], Dist: d}
	}
	return out
}

// searchFloat is the exact traversal: greedy descent through the upper
// layers, then a beam of width ef on layer 0, all scored with the
// full-precision kernel against the arena.
func (f *Frozen) searchFloat(q []float32, ef int, st *Stats) []cand {
	cur := f.entry
	curDist := f.dist(q, f.vec(cur))
	st.DistComps++
	for l := f.maxLevel; l >= 1; l-- {
		for changed := true; changed; {
			changed = false
			st.Hops++
			for _, nb := range f.neighbors(l, cur) {
				d := f.dist(q, f.vec(nb))
				st.DistComps++
				if d < curDist {
					curDist, cur = d, nb
					changed = true
				}
			}
		}
	}
	ctx := ctxPool.Get().(*searchCtx)
	defer ctxPool.Put(ctx)
	ctx.reset(len(f.ids))
	var frontier topk.MinQueue
	results := topk.New(ef)
	// The dynamic path re-scores the entry when it starts the layer-0
	// beam (searchLayer owns its entry distance); do the same so work
	// stats — not just results — are bit-identical to Graph.SearchEf.
	curDist = f.dist(q, f.vec(cur))
	st.DistComps++
	ctx.visit(cur)
	frontier.PushMin(int64(cur), curDist)
	results.Push(int64(cur), curDist)
	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range f.neighbors(0, uint32(c.ID)) {
			if !ctx.visit(nb) {
				continue
			}
			dn := f.dist(q, f.vec(nb))
			st.DistComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				results.Push(int64(nb), dn)
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}

// searchBytes is the quantized traversal: identical structure to
// searchFloat but scored with the integer SQ8 kernel against the code
// slab — 1/4 the memory traffic per candidate.
func (f *Frozen) searchBytes(qc []uint8, ef int, st *Stats) []cand {
	cur := f.entry
	curDist := float32(vec.SquaredL2Bytes(qc, f.code(cur)))
	st.QuantComps++
	for l := f.maxLevel; l >= 1; l-- {
		for changed := true; changed; {
			changed = false
			st.Hops++
			for _, nb := range f.neighbors(l, cur) {
				d := float32(vec.SquaredL2Bytes(qc, f.code(nb)))
				st.QuantComps++
				if d < curDist {
					curDist, cur = d, nb
					changed = true
				}
			}
		}
	}
	ctx := ctxPool.Get().(*searchCtx)
	defer ctxPool.Put(ctx)
	ctx.reset(len(f.ids))
	var frontier topk.MinQueue
	results := topk.New(ef)
	curDist = float32(vec.SquaredL2Bytes(qc, f.code(cur)))
	st.QuantComps++
	ctx.visit(cur)
	frontier.PushMin(int64(cur), curDist)
	results.Push(int64(cur), curDist)
	for frontier.Len() > 0 {
		c := frontier.PopMin()
		if c.Dist > results.Bound() {
			break
		}
		st.Hops++
		for _, nb := range f.neighbors(0, uint32(c.ID)) {
			if !ctx.visit(nb) {
				continue
			}
			dn := float32(vec.SquaredL2Bytes(qc, f.code(nb)))
			st.QuantComps++
			if !results.Full() || dn < results.Bound() {
				frontier.PushMin(int64(nb), dn)
				results.Push(int64(nb), dn)
			}
		}
	}
	rs := results.Results()
	out := make([]cand, len(rs))
	for i, r := range rs {
		out[i] = cand{uint32(r.ID), r.Dist}
	}
	return out
}
