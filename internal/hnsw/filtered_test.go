package hnsw

import (
	"math/rand"
	"testing"

	"repro/internal/topk"
	"repro/internal/vec"
)

// selKeep builds a predicate accepting ids where id % mod == 0, i.e. a
// selectivity of 1/mod over the sequential test ids.
func selKeep(mod int64) func(int64) bool {
	if mod <= 1 {
		return func(int64) bool { return true }
	}
	return func(id int64) bool { return id%mod == 0 }
}

func bruteKNNFiltered(ds *vec.Dataset, q []float32, k int, keep func(int64) bool) []topk.Result {
	c := topk.New(k)
	for i := 0; i < ds.Len(); i++ {
		if keep(ds.ID(i)) {
			c.Push(ds.ID(i), vec.L2Distance(q, ds.At(i)))
		}
	}
	return c.Results()
}

// TestSearchFilteredGolden pins pushdown recall against exact filtered
// brute force at selectivities {1.0, 0.1, 0.01}, on both the dynamic
// graph and the frozen layouts (exact and SQ8).
func TestSearchFilteredGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		n       = 4000
		dim     = 16
		k       = 10
		ef      = 128
		queries = 40
	)
	ds := clusteredData(rng, n, dim, 12)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := g.Freeze(FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fq, err := g.Freeze(FreezeOptions{SQ8: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name      string
		mod       int64
		minRecall float64
	}{
		{"sel_1.00", 1, 0.95},
		{"sel_0.10", 10, 0.95},
		{"sel_0.01", 100, 0.95},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keep := selKeep(tc.mod)
			var sumDyn, sumFz, sumQ float64
			for qi := 0; qi < queries; qi++ {
				q := ds.At(rng.Intn(n))
				truth := bruteKNNFiltered(ds, q, k, keep)
				if len(truth) == 0 {
					t.Fatal("filtered ground truth empty")
				}

				got, _, err := g.SearchEfFiltered(q, k, ef, keep)
				if err != nil {
					t.Fatal(err)
				}
				assertAllMatch(t, got, keep)
				sumDyn += recallOf(got, truth)

				fr, _, err := fz.SearchEfFiltered(q, k, ef, -1, keep)
				if err != nil {
					t.Fatal(err)
				}
				assertAllMatch(t, fr, keep)
				sumFz += recallOf(fr, truth)

				qr, _, err := fq.SearchEfFiltered(q, k, ef, 4*k, keep)
				if err != nil {
					t.Fatal(err)
				}
				assertAllMatch(t, qr, keep)
				sumQ += recallOf(qr, truth)
			}
			for _, r := range []struct {
				name string
				mean float64
			}{
				{"dynamic", sumDyn / queries},
				{"frozen", sumFz / queries},
				{"frozen_sq8", sumQ / queries},
			} {
				if r.mean < tc.minRecall {
					t.Errorf("%s filtered recall %.3f < %.3f at %s", r.name, r.mean, tc.minRecall, tc.name)
				}
			}
		})
	}
}

func assertAllMatch(t *testing.T, rs []topk.Result, keep func(int64) bool) {
	t.Helper()
	for _, r := range rs {
		if !keep(r.ID) {
			t.Fatalf("result id %d violates the filter", r.ID)
		}
	}
}

// TestSearchFilteredBeatsPostFilter demonstrates why pushdown exists:
// at 1% selectivity, post-filtering an unfiltered top-k list yields far
// fewer valid hits than traversal-time filtering.
func TestSearchFilteredBeatsPostFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		n   = 5000
		dim = 12
		k   = 10
		ef  = 96
	)
	ds := clusteredData(rng, n, dim, 8)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	keep := selKeep(100)
	var pushdownHits, postHits int
	for qi := 0; qi < 40; qi++ {
		q := ds.At(rng.Intn(n))
		truth := map[int64]bool{}
		for _, r := range bruteKNNFiltered(ds, q, k, keep) {
			truth[r.ID] = true
		}
		got, _, err := g.SearchEfFiltered(q, k, ef, keep)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if truth[r.ID] {
				pushdownHits++
			}
		}
		raw, _, err := g.SearchEf(q, k, ef)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range raw {
			if keep(r.ID) && truth[r.ID] {
				postHits++
			}
		}
	}
	if pushdownHits <= postHits {
		t.Fatalf("pushdown hits %d not better than post-filter hits %d", pushdownHits, postHits)
	}
	t.Logf("valid hits over 40 queries: pushdown=%d post-filter=%d", pushdownHits, postHits)
}

// TestSearchFilteredNilAndEdges covers the degenerate paths: nil
// predicate equals unfiltered, nothing-matches yields empty results,
// and dimension/empty errors still fire.
func TestSearchFilteredNilAndEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := clusteredData(rng, 300, 8, 4)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.At(0)

	plain, _, err := g.SearchEf(q, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, _, err := g.SearchEfFiltered(q, 5, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(viaNil) {
		t.Fatalf("nil filter diverges from unfiltered: %d vs %d", len(plain), len(viaNil))
	}
	for i := range plain {
		if plain[i] != viaNil[i] {
			t.Fatalf("nil filter result %d diverges: %+v vs %+v", i, plain[i], viaNil[i])
		}
	}

	none, _, err := g.SearchEfFiltered(q, 5, 32, func(int64) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("false predicate returned %d results", len(none))
	}

	if _, _, err := g.SearchEfFiltered(make([]float32, 3), 5, 32, selKeep(1)); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	empty, _ := New(8, DefaultConfig(vec.L2))
	if _, _, err := empty.SearchEfFiltered(make([]float32, 8), 5, 32, selKeep(1)); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}

	fz, err := g.Freeze(FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fnone, _, err := fz.SearchEfFiltered(q, 5, 32, -1, func(int64) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(fnone) != 0 {
		t.Fatalf("frozen false predicate returned %d results", len(fnone))
	}
}
