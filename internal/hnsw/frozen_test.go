package hnsw

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func frozenTestData(seed int64, n, dim int) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i)*3+1) // non-contiguous global IDs
	}
	return ds
}

// TestFrozenFloatBitIdentical: the frozen float32 path must return
// byte-for-byte the same results as the dynamic graph — same IDs, same
// distances, same order — across seeds, dims and beam widths. The flat
// CSR layout preserves per-node link order and the traversal shares the
// dynamic path's tie-breaking, so this is an equality test, not an
// epsilon test.
func TestFrozenFloatBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		n, dim int
		ef     int
	}{
		{1, 400, 8, 10},
		{2, 1200, 16, 50},
		{3, 2000, 32, 100},
	} {
		ds := frozenTestData(tc.seed, tc.n, tc.dim)
		cfg := DefaultConfig(vec.L2)
		cfg.Seed = tc.seed
		g, _, err := Build(ds, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		f, err := g.Freeze(FreezeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if f.Len() != tc.n || f.Dim() != tc.dim {
			t.Fatalf("frozen shape %dx%d, want %dx%d", f.Len(), f.Dim(), tc.n, tc.dim)
		}
		rng := rand.New(rand.NewSource(tc.seed + 100))
		q := make([]float32, tc.dim)
		for qi := 0; qi < 50; qi++ {
			for j := range q {
				q[j] = float32(rng.NormFloat64())
			}
			want, wst, err := g.SearchEf(q, 10, tc.ef)
			if err != nil {
				t.Fatal(err)
			}
			got, gst, err := f.SearchEf(q, 10, tc.ef, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d query %d: %d results, want %d", tc.seed, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d query %d rank %d: frozen %+v != dynamic %+v", tc.seed, qi, i, got[i], want[i])
				}
			}
			if gst.DistComps != wst.DistComps || gst.Hops != wst.Hops {
				t.Fatalf("seed %d query %d: frozen work (%d,%d) != dynamic (%d,%d)",
					tc.seed, qi, gst.DistComps, gst.Hops, wst.DistComps, wst.Hops)
			}
		}
	}
}

// TestFrozenSQ8RerankInfExact: rerankK < 0 disables quantization — the
// quantized-frozen index must be bit-identical to the exact path even
// with a code slab present.
func TestFrozenSQ8RerankInfExact(t *testing.T) {
	ds := frozenTestData(4, 1000, 16)
	cfg := DefaultConfig(vec.L2)
	g, _, err := Build(ds, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.Freeze(FreezeOptions{SQ8: true})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Quantized() {
		t.Fatal("codec missing")
	}
	rng := rand.New(rand.NewSource(40))
	q := make([]float32, 16)
	for qi := 0; qi < 30; qi++ {
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		want, _, err := g.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := f.SearchEf(q, 10, g.EfSearch(), -1)
		if err != nil {
			t.Fatal(err)
		}
		if st.QuantComps != 0 || st.Reranked != 0 {
			t.Fatalf("rerankK<0 still did quantized work: %+v", st)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestFrozenSQ8Recall: the quantized first pass with a modest re-rank
// budget must stay close to the exact path, and must actually do its
// scoring in the byte domain.
func TestFrozenSQ8Recall(t *testing.T) {
	ds := frozenTestData(5, 3000, 24)
	cfg := DefaultConfig(vec.L2)
	g, _, err := Build(ds, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.Freeze(FreezeOptions{SQ8: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(50))
	q := make([]float32, 24)
	const k = 10
	hits, total := 0, 0
	for qi := 0; qi < 50; qi++ {
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		exact, _, err := g.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := f.SearchEf(q, k, g.EfSearch(), 4*k)
		if err != nil {
			t.Fatal(err)
		}
		if st.QuantComps == 0 {
			t.Fatal("no quantized scans recorded")
		}
		if st.Reranked == 0 || st.Reranked > 4*k {
			t.Fatalf("reranked %d, want in (0, %d]", st.Reranked, 4*k)
		}
		in := make(map[int64]bool, len(exact))
		for _, r := range exact {
			in[r.ID] = true
		}
		for _, r := range got {
			if in[r.ID] {
				hits++
			}
		}
		total += len(exact)
	}
	if recall := float64(hits) / float64(total); recall < 0.9 {
		t.Errorf("sq8 recall@%d vs exact = %.3f, want >= 0.9", k, recall)
	}
}

// TestFrozenSQ8RequiresMonotoneMetric: byte-domain distances rank only
// L2-family metrics; freezing with SQ8 under cosine must error.
func TestFrozenSQ8RequiresMonotoneMetric(t *testing.T) {
	ds := frozenTestData(6, 100, 8)
	cfg := DefaultConfig(vec.Cosine)
	g, _, err := Build(ds, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Freeze(FreezeOptions{SQ8: true}); err == nil {
		t.Error("SQ8 freeze accepted a non-L2 metric")
	}
	if _, err := g.Freeze(FreezeOptions{}); err != nil {
		t.Errorf("plain freeze should work under cosine: %v", err)
	}
}

// TestFrozenEmptyAndTinyGraph: freezing an empty graph yields an empty
// view whose search reports ErrEmpty; one-point graphs work.
func TestFrozenEmptyAndTinyGraph(t *testing.T) {
	g, err := New(4, DefaultConfig(vec.L2))
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.Freeze(FreezeOptions{SQ8: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("empty freeze has %d rows", f.Len())
	}
	if _, _, err := f.Search([]float32{1, 2, 3, 4}, 5); err != ErrEmpty {
		t.Fatalf("empty search err = %v, want ErrEmpty", err)
	}
	if _, err := g.Add([]float32{1, 2, 3, 4}, 7); err != nil {
		t.Fatal(err)
	}
	f, err = g.Freeze(FreezeOptions{SQ8: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := f.Search([]float32{1, 2, 3, 4}, 5)
	if err != nil || len(rs) != 1 || rs[0].ID != 7 {
		t.Fatalf("one-point frozen search = %v, %v", rs, err)
	}
	if f.ArenaBytes() <= 0 {
		t.Error("ArenaBytes not accounted")
	}
}

// TestFrozenSnapshotIgnoresLaterAdds: a freeze taken mid-ingest serves
// exactly the rows committed at freeze time; later adds are invisible to
// it (the serving layer's tail scan covers them).
func TestFrozenSnapshotIgnoresLaterAdds(t *testing.T) {
	ds := frozenTestData(7, 500, 8)
	g, _, err := Build(ds, DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.Freeze(FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add([]float32{0, 0, 0, 0, 0, 0, 0, 0}, 999999); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 500 {
		t.Fatalf("frozen view grew to %d", f.Len())
	}
	rs, _, err := f.SearchEf(make([]float32, 8), 5, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.ID == 999999 {
			t.Fatal("frozen view surfaced a post-freeze row")
		}
	}
}
