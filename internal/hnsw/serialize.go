package hnsw

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/vec"
)

// Binary serialization of an HNSW index. The format is little-endian:
//
//	magic "HNSW" | version u32 | config block | dataset (vec format) |
//	for each node: level u32, then per layer: degree u32 + ids
//
// Indexes saved by annbuild and loaded by annquery/annworker use this.

const (
	magic   = "HNSW"
	version = 1
)

// WriteTo serialises the index. The index must not be mutated during the
// call.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	u32 := func(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }
	u64 := func(v uint64) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := u32(version); err != nil {
		return cw.n, err
	}
	cfg := g.cfg
	for _, v := range []uint32{
		uint32(cfg.M), uint32(cfg.Mmax0), uint32(cfg.Mmax),
		uint32(cfg.EfConstruction), uint32(cfg.EfSearch), uint32(cfg.Metric),
	} {
		if err := u32(v); err != nil {
			return cw.n, err
		}
	}
	if err := u64(uint64(cfg.Seed)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, cfg.LevelMult); err != nil {
		return cw.n, err
	}
	flags := uint32(0)
	if cfg.KeepPruned {
		flags |= 1
	}
	if cfg.Heuristic {
		flags |= 2
	}
	if err := u32(flags); err != nil {
		return cw.n, err
	}
	if err := u32(g.entry); err != nil {
		return cw.n, err
	}
	if err := u32(uint32(g.maxLevel)); err != nil {
		return cw.n, err
	}
	if err := g.data.WriteBinary(cw); err != nil {
		return cw.n, err
	}
	for _, n := range g.nodes {
		if err := u32(uint32(len(n.links))); err != nil {
			return cw.n, err
		}
		for _, ls := range n.links {
			if err := u32(uint32(len(ls))); err != nil {
				return cw.n, err
			}
			for _, id := range ls {
				if err := u32(id); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, bw.Flush()
}

// ReadFrom deserialises an index written by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("hnsw: bad magic %q", hdr)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("hnsw: unsupported version %d", ver)
	}
	var raw [6]uint32
	for i := range raw {
		if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
			return nil, err
		}
	}
	var seed uint64
	if err := binary.Read(br, binary.LittleEndian, &seed); err != nil {
		return nil, err
	}
	var mult float64
	if err := binary.Read(br, binary.LittleEndian, &mult); err != nil {
		return nil, err
	}
	var flags, entry, maxLevel uint32
	for _, p := range []*uint32{&flags, &entry, &maxLevel} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		M: int(raw[0]), Mmax0: int(raw[1]), Mmax: int(raw[2]),
		EfConstruction: int(raw[3]), EfSearch: int(raw[4]),
		Metric: vec.Metric(raw[5]), Seed: int64(seed), LevelMult: mult,
		KeepPruned: flags&1 != 0, Heuristic: flags&2 != 0,
	}
	ds, err := vec.ReadBinary(br)
	if err != nil {
		return nil, err
	}
	g, err := New(ds.Dim, cfg)
	if err != nil {
		return nil, err
	}
	g.data = ds
	g.entry = entry
	g.maxLevel = int(maxLevel)
	g.empty = ds.Len() == 0
	g.nodes = make([]*node, ds.Len())
	for i := range g.nodes {
		var nl uint32
		if err := binary.Read(br, binary.LittleEndian, &nl); err != nil {
			return nil, err
		}
		n := &node{links: make([][]uint32, nl)}
		for l := range n.links {
			var deg uint32
			if err := binary.Read(br, binary.LittleEndian, &deg); err != nil {
				return nil, err
			}
			if int(deg) > ds.Len() {
				return nil, fmt.Errorf("hnsw: corrupt degree %d", deg)
			}
			ls := make([]uint32, deg)
			for j := range ls {
				if err := binary.Read(br, binary.LittleEndian, &ls[j]); err != nil {
					return nil, err
				}
				if int(ls[j]) >= ds.Len() {
					return nil, fmt.Errorf("hnsw: corrupt link %d", ls[j])
				}
			}
			n.links[l] = ls
		}
		g.nodes[i] = n
	}
	return g, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
