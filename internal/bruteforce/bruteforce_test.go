package bruteforce

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vec"
)

func randDS(rng *rand.Rand, n, dim int) *vec.Dataset {
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func TestSearchExactAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randDS(rng, 300, 9)
	q := randDS(rng, 1, 9).At(0)
	got := Search(ds, q, 5, vec.L2)
	type pair struct {
		id int64
		d  float64
	}
	var all []pair
	for i := 0; i < ds.Len(); i++ {
		all = append(all, pair{ds.ID(i), float64(vec.L2Distance(q, ds.At(i)))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	for i, r := range got {
		if r.ID != all[i].id {
			t.Fatalf("rank %d: got %d want %d", i, r.ID, all[i].id)
		}
		if math.Abs(float64(r.Dist)-all[i].d) > 1e-4 {
			t.Fatalf("rank %d dist %v want %v", i, r.Dist, all[i].d)
		}
	}
}

func TestSearchNonL2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDS(rng, 100, 5)
	q := ds.At(0)
	got := Search(ds, q, 3, vec.L1)
	if got[0].ID != 0 || got[0].Dist != 0 {
		t.Fatalf("self not nearest: %+v", got[0])
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randDS(rng, 200, 7)
	qs := randDS(rng, 37, 7)
	batch := SearchBatch(ds, qs, 4, vec.L2)
	if len(batch) != 37 {
		t.Fatalf("len %d", len(batch))
	}
	for i := 0; i < qs.Len(); i++ {
		single := Search(ds, qs.At(i), 4, vec.L2)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("q%d r%d: %+v vs %+v", i, j, batch[i][j], single[j])
			}
		}
	}
}

func TestGroundTruthShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randDS(rng, 50, 3)
	qs := randDS(rng, 5, 3)
	gt := GroundTruth(ds, qs, 10, vec.L2)
	if len(gt) != 5 {
		t.Fatalf("rows %d", len(gt))
	}
	for _, row := range gt {
		if len(row) != 10 {
			t.Fatalf("row len %d", len(row))
		}
	}
}

func TestSearchBatchEmptyQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randDS(rng, 10, 2)
	qs := vec.NewDataset(2, 0)
	if got := SearchBatch(ds, qs, 3, vec.L2); len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}

func BenchmarkBrute10kDim128(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ds := randDS(rng, 10000, 128)
	q := ds.At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(ds, q, 10, vec.L2)
	}
}
