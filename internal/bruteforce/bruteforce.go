// Package bruteforce provides exact k-NN by exhaustive scan. It serves
// two roles: computing ground truth for recall measurement (the paper
// scores recall against the TEXMEX ground-truth files; we regenerate
// equivalent truth for synthetic data) and acting as the trivially
// correct baseline in tests.
package bruteforce

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Search returns the exact k nearest neighbors of q in ds.
func Search(ds *vec.Dataset, q []float32, k int, metric vec.Metric) []topk.Result {
	dist := metric.Func()
	if metric == vec.L2 {
		// squared-L2 scan with one sqrt fixup at the end
		c := topk.New(k)
		for i := 0; i < ds.Len(); i++ {
			c.Push(ds.ID(i), vec.SquaredL2Distance(q, ds.At(i)))
		}
		rs := c.Results()
		for i := range rs {
			rs[i].Dist = sqrt32(rs[i].Dist)
		}
		return rs
	}
	c := topk.New(k)
	for i := 0; i < ds.Len(); i++ {
		c.Push(ds.ID(i), dist(q, ds.At(i)))
	}
	return c.Results()
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// SearchBatch computes exact k-NN for every query using all CPUs. The
// result rows are ordered like the queries.
func SearchBatch(ds, queries *vec.Dataset, k int, metric vec.Metric) [][]topk.Result {
	out := make([][]topk.Result, queries.Len())
	nw := runtime.GOMAXPROCS(0)
	if nw > queries.Len() {
		nw = queries.Len()
	}
	if nw < 1 {
		nw = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, nw*2)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = Search(ds, queries.At(i), k, metric)
			}
		}()
	}
	for i := 0; i < queries.Len(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// GroundTruth computes the exact neighbor ID lists for a query set, in
// the shape ReadIvecs/WriteIvecs use.
func GroundTruth(ds, queries *vec.Dataset, k int, metric vec.Metric) [][]int32 {
	res := SearchBatch(ds, queries, k, metric)
	out := make([][]int32, len(res))
	for i, rs := range res {
		row := make([]int32, len(rs))
		for j, r := range rs {
			row[j] = int32(r.ID)
		}
		out[i] = row
	}
	return out
}
