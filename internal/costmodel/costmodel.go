// Package costmodel converts measured work counts (distance
// computations, graph hops, messages, bytes) into modelled execution
// times for processor counts far beyond this machine.
//
// Why a model: the paper's headline runs use up to 8192 Cray XC40 cores.
// This reproduction executes the full distributed protocol with that
// many ranks as goroutines — the work distribution, routing decisions,
// load (im)balance and message counts are all real — but wall-clock time
// on an oversubscribed laptop says nothing about an 8192-core machine.
// The model therefore prices each rank's measured work with calibrated
// constants:
//
//   - compute: ns per distance computation (micro-benchmarked at startup
//     for the actual dimension) and ns per graph hop;
//   - communication: per-message latency plus bytes/bandwidth, with
//     defaults in the range of the Cray Aries interconnect the paper
//     used (~1.3 us latency, ~10 GB/s per-core effective bandwidth);
//   - the master's serial dispatch loop, which is the scalability
//     ceiling Algorithm 3 imposes.
//
// Modelled time = max(master serial time, slowest worker) + pipeline
// fill. Strong-scaling *shape* (who wins, where curvature appears) is
// driven by the measured work split, not by the constants.
package costmodel

import (
	"math/rand"
	"time"

	"repro/internal/vec"
)

// Params are the calibrated cost constants.
type Params struct {
	// DistNsPerDim is the cost of one distance computation divided by
	// the dimension (ns). Calibrate measures it.
	DistNsPerDim float64
	// DistNsBase is the per-call overhead of one distance computation.
	DistNsBase float64
	// HopNs is the overhead of one HNSW graph expansion besides its
	// distance computations (priority queue, visited set).
	HopNs float64
	// MsgLatencyNs is the one-way message latency.
	MsgLatencyNs float64
	// MsgCPUNs is the per-message CPU occupancy at sender or receiver
	// (marshalling, matching); the master pays it per dispatched query.
	MsgCPUNs float64
	// BytesPerNs is the effective per-link bandwidth (bytes/ns; 10 GB/s
	// = 10 bytes/ns).
	BytesPerNs float64
	// RouteNsPerDim prices the master's routing distance computations;
	// 0 means DistNsPerDim. The VP tree is a few megabytes and stays
	// cache-resident at the master, so routing stays cache-hot even
	// when worker-side scans of a billion-point corpus are priced
	// memory-bound.
	RouteNsPerDim float64
}

// DefaultInterconnect returns Aries-like network constants.
func DefaultInterconnect() Params {
	return Params{
		HopNs:        55,
		MsgLatencyNs: 1300,
		MsgCPUNs:     450,
		BytesPerNs:   10,
	}
}

// Calibrate micro-benchmarks the distance kernel for the given dimension
// and fills in the compute constants (network constants from
// DefaultInterconnect).
func Calibrate(dim int) Params {
	p := DefaultInterconnect()
	rng := rand.New(rand.NewSource(42))
	a := make([]float32, dim)
	b := make([]float32, dim)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	const iters = 20000
	var sink float32
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		sink += vec.SquaredL2Distance(a, b)
	}
	elapsed := time.Since(t0)
	_ = sink
	perCall := float64(elapsed.Nanoseconds()) / iters
	p.DistNsBase = 4
	p.DistNsPerDim = (perCall - p.DistNsBase) / float64(dim)
	if p.DistNsPerDim <= 0 {
		p.DistNsPerDim = 0.25
	}
	return p
}

// DistNs prices n distance computations in dimension dim.
func (p Params) DistNs(dim int, n int64) float64 {
	return float64(n) * (p.DistNsBase + p.DistNsPerDim*float64(dim))
}

// Run describes one measured batch execution at reduced physical scale
// whose work counts are to be priced.
type Run struct {
	P   int // worker count (processing cores)
	Dim int
	K   int
	// NQueries and Dispatched size the master's serial loop.
	NQueries   int
	Dispatched int64
	// Per-worker measured work.
	PerWorkerDistComps []int64
	PerWorkerHops      []int64
	PerWorkerTasks     []int64
	// RouteDistCompsPerQuery is the master-side VP-tree routing work
	// (≈ P-1 internal nodes evaluated per query).
	RouteDistCompsPerQuery int64
	// ThreadsPerCore models intra-node OpenMP-style parallelism applied
	// to each worker's busy time (the paper uses 1 rank per core, so 1).
	ThreadsPerCore int
}

// Estimate is the modelled timing of a Run.
type Estimate struct {
	Master     time.Duration // serial routing + dispatch at the master
	Route      time.Duration // the routing share of Master
	Dispatch   time.Duration // the per-message send share of Master
	MaxWorker  time.Duration // slowest worker's busy time
	MeanWorker time.Duration
	Comm       time.Duration // wire/latency component of the span
	Total      time.Duration // modelled makespan
}

// Estimate prices a run.
func (p Params) Estimate(r Run) Estimate {
	if r.ThreadsPerCore <= 0 {
		r.ThreadsPerCore = 1
	}
	queryBytes := int64(10 + 4*r.Dim)
	resultBytes := int64(20 + 12*r.K)

	// Master: route every query (VP-tree descent) and dispatch every
	// routed task; collection is one-sided, so the master does not pay
	// per-result receive CPU (that is the point of Section IV-C1).
	routePerDim := p.RouteNsPerDim
	if routePerDim == 0 {
		routePerDim = p.DistNsPerDim
	}
	routeNs := float64(int64(r.NQueries)*r.RouteDistCompsPerQuery) *
		(p.DistNsBase + routePerDim*float64(r.Dim))
	dispatchNs := float64(r.Dispatched) * p.MsgCPUNs
	masterNs := routeNs + dispatchNs

	// Workers: busy time = search compute + result marshalling, divided
	// across the threads of the core's node partner (paper runs 1 thread
	// per core; the knob exists for the hybrid ablation).
	var maxW, sumW float64
	for i := range r.PerWorkerDistComps {
		w := p.DistNs(r.Dim, r.PerWorkerDistComps[i])
		if i < len(r.PerWorkerHops) {
			w += float64(r.PerWorkerHops[i]) * p.HopNs
		}
		var tasks int64
		if i < len(r.PerWorkerTasks) {
			tasks = r.PerWorkerTasks[i]
		}
		w += float64(tasks) * p.MsgCPUNs // recv query + accumulate result
		w /= float64(r.ThreadsPerCore)
		sumW += w
		if w > maxW {
			maxW = w
		}
	}
	meanW := 0.0
	if len(r.PerWorkerDistComps) > 0 {
		meanW = sumW / float64(len(r.PerWorkerDistComps))
	}

	// Communication: wire time of all queries out and results back.
	wireBytes := r.Dispatched * (queryBytes + resultBytes)
	commNs := float64(r.Dispatched)*p.MsgLatencyNs/float64(maxInt(r.P, 1)) + // overlapped across links
		float64(wireBytes)/p.BytesPerNs/float64(maxInt(r.P, 1)) +
		2*p.MsgLatencyNs // pipeline fill + drain

	// Makespan: the master's serial loop and the slowest worker overlap
	// (non-blocking sends), so the span is their max plus the
	// communication that cannot hide.
	total := maxFloat(masterNs, maxW) + commNs
	return Estimate{
		Master:     time.Duration(masterNs),
		Route:      time.Duration(routeNs),
		Dispatch:   time.Duration(dispatchNs),
		MaxWorker:  time.Duration(maxW),
		MeanWorker: time.Duration(meanW),
		Comm:       time.Duration(commNs),
		Total:      time.Duration(total),
	}
}

// ConstructionRun describes a measured distributed build to price.
type ConstructionRun struct {
	P   int
	Dim int
	// PointsPerRank after the final shuffle (≈ N/P).
	PointsPerRank int64
	// HNSWDistCompsPerRank measured during the local build.
	HNSWDistCompsPerRank int64
	HNSWHopsPerRank      int64
	// Levels of the distributed VP tree (= ceil(log2 P)).
	Levels int
	// ShuffleBytesPerRank per level (≈ points * 4*dim + ids).
	ShuffleBytesPerRank int64
	ThreadsPerCore      int
}

// ConstructionEstimate prices a distributed build: per level, the
// vantage-point selection scan + median scan + AlltoAllv shuffle; then
// the local HNSW build.
type ConstructionEstimate struct {
	VPTree time.Duration
	HNSW   time.Duration
	Total  time.Duration
}

// EstimateConstruction prices a build run.
func (p Params) EstimateConstruction(r ConstructionRun) ConstructionEstimate {
	if r.ThreadsPerCore <= 0 {
		r.ThreadsPerCore = 1
	}
	perLevel := p.DistNs(r.Dim, r.PointsPerRank) + // distance-to-vp scan
		p.DistNs(r.Dim, 100*100) + // candidate evaluation (Algorithm 1)
		float64(r.ShuffleBytesPerRank)/p.BytesPerNs +
		2*p.MsgLatencyNs*float64(log2ceil(r.P)) // collectives
	vpNs := perLevel * float64(r.Levels)
	hnswNs := (p.DistNs(r.Dim, r.HNSWDistCompsPerRank) +
		float64(r.HNSWHopsPerRank)*p.HopNs) / float64(r.ThreadsPerCore)
	return ConstructionEstimate{
		VPTree: time.Duration(vpNs),
		HNSW:   time.Duration(hnswNs),
		Total:  time.Duration(vpNs + hnswNs),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func log2ceil(x int) int {
	n := 0
	for p := 1; p < x; p *= 2 {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}
