package costmodel

import (
	"testing"
	"time"
)

func TestCalibratePositive(t *testing.T) {
	p := Calibrate(128)
	if p.DistNsPerDim <= 0 {
		t.Errorf("DistNsPerDim = %v", p.DistNsPerDim)
	}
	if p.MsgLatencyNs <= 0 || p.BytesPerNs <= 0 {
		t.Error("network constants missing")
	}
}

func TestDistNsScalesWithDim(t *testing.T) {
	p := Params{DistNsPerDim: 1, DistNsBase: 10}
	if p.DistNs(100, 1) != 110 {
		t.Errorf("got %v", p.DistNs(100, 1))
	}
	if p.DistNs(100, 10) != 1100 {
		t.Errorf("got %v", p.DistNs(100, 10))
	}
}

func testParams() Params {
	p := DefaultInterconnect()
	p.DistNsPerDim = 0.25
	p.DistNsBase = 4
	return p
}

func baseRun(pCount int, perWorker int64) Run {
	dcs := make([]int64, pCount)
	hops := make([]int64, pCount)
	tasks := make([]int64, pCount)
	for i := range dcs {
		dcs[i] = perWorker
		hops[i] = perWorker / 10
		tasks[i] = 100
	}
	return Run{
		P: pCount, Dim: 128, K: 10,
		NQueries: 10000, Dispatched: int64(pCount) * 100,
		PerWorkerDistComps: dcs, PerWorkerHops: hops, PerWorkerTasks: tasks,
		RouteDistCompsPerQuery: int64(pCount - 1),
	}
}

func TestEstimateMonotoneInWork(t *testing.T) {
	p := testParams()
	small := p.Estimate(baseRun(8, 1000))
	big := p.Estimate(baseRun(8, 100000))
	if big.Total <= small.Total {
		t.Errorf("more work should take longer: %v vs %v", big.Total, small.Total)
	}
	if big.MaxWorker <= small.MaxWorker {
		t.Error("worker time should grow")
	}
}

func TestEstimateStragglerDominates(t *testing.T) {
	p := testParams()
	// worker-dominated regime: per-worker work well above the master's
	// serial routing cost
	r := baseRun(8, 1_000_000)
	r.PerWorkerDistComps[3] = 50_000_000 // straggler
	e := p.Estimate(r)
	bal := p.Estimate(baseRun(8, 1_000_000))
	if e.Total <= bal.Total {
		t.Error("straggler should slow the makespan")
	}
	if e.MaxWorker <= e.MeanWorker {
		t.Error("max should exceed mean with a straggler")
	}
}

func TestEstimateStrongScalingShape(t *testing.T) {
	// Fixed total work split across more workers must shrink the span
	// until the master's serial dispatch dominates.
	p := testParams()
	total := int64(64_000_000)
	prev := time.Duration(1<<62 - 1)
	improved := 0
	for _, pc := range []int{8, 16, 32, 64, 128} {
		r := baseRun(pc, total/int64(pc))
		r.Dispatched = 20000
		e := p.Estimate(r)
		if e.Total < prev {
			improved++
		}
		prev = e.Total
	}
	if improved < 3 {
		t.Errorf("scaling should improve span for most steps, improved=%d", improved)
	}
}

func TestEstimateMasterCeiling(t *testing.T) {
	// With negligible worker work, the master's dispatch loop bounds the
	// span and grows with the dispatched count.
	p := testParams()
	a := baseRun(1024, 10)
	a.Dispatched = 20000
	b := baseRun(1024, 10)
	b.Dispatched = 200000
	ea, eb := p.Estimate(a), p.Estimate(b)
	if eb.Master <= ea.Master {
		t.Error("master time should grow with dispatch count")
	}
}

func TestEstimateThreadsPerCore(t *testing.T) {
	p := testParams()
	r := baseRun(4, 100000)
	solo := p.Estimate(r)
	r.ThreadsPerCore = 4
	multi := p.Estimate(r)
	if multi.MaxWorker >= solo.MaxWorker {
		t.Error("threads should cut worker busy time")
	}
}

func TestEstimateEmptyWorkers(t *testing.T) {
	p := testParams()
	e := p.Estimate(Run{P: 1, Dim: 8, K: 10, NQueries: 1, Dispatched: 1})
	if e.MaxWorker != 0 || e.Total <= 0 {
		t.Errorf("%+v", e)
	}
}

func TestEstimateConstructionScales(t *testing.T) {
	p := testParams()
	small := p.EstimateConstruction(ConstructionRun{
		P: 256, Dim: 128, PointsPerRank: 4_000_000,
		HNSWDistCompsPerRank: 4_000_000 * 300, Levels: 8,
		ShuffleBytesPerRank: 4_000_000 * 128 * 4,
	})
	big := p.EstimateConstruction(ConstructionRun{
		P: 8192, Dim: 128, PointsPerRank: 125_000,
		HNSWDistCompsPerRank: 125_000 * 300, Levels: 13,
		ShuffleBytesPerRank: 125_000 * 128 * 4,
	})
	if big.HNSW >= small.HNSW {
		t.Errorf("HNSW phase should shrink with more cores: %v vs %v", big.HNSW, small.HNSW)
	}
	if big.Total >= small.Total {
		t.Errorf("total should shrink: %v vs %v", big.Total, small.Total)
	}
	// but VP phase shrinks sublinearly (more levels), the Table II effect
	ratioHNSW := float64(small.HNSW) / float64(big.HNSW)
	ratioVP := float64(small.VPTree) / float64(big.VPTree)
	if ratioVP >= ratioHNSW {
		t.Errorf("VP phase should scale worse than HNSW: %v vs %v", ratioVP, ratioHNSW)
	}
}

func TestLog2Ceil(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {9, 4}} {
		if got := log2ceil(tc.in); got != tc.want {
			t.Errorf("log2ceil(%d) = %d want %d", tc.in, got, tc.want)
		}
	}
}
